"""Ring-buffered time series and the simulation-clock periodic sampler.

The PR-1 telemetry answers "where did the time go" per request; this
module answers "what did the system look like *over* time".  A
:class:`TimeSeriesSampler` registers scrape callables for a fixed metric
vocabulary (IOPS, active band, codec shares, compression ratio, slot
occupancy, queue depths, GC activity, write amplification, flash busy
fraction) and ticks them on a daemon :class:`~repro.sim.engine.PeriodicEvent`
— the sampler rides the simulation clock, never wall time, and cannot
keep the event loop alive once the workload drains.

Each sampled value lands in a :class:`RingSeries` (fixed capacity, old
points dropped, drop count kept), so memory stays constant no matter how
long the replay runs.  Band switches are recorded out-of-band as exact
:class:`MarkerSeries` events via the policy's ``on_select`` hook, so a
switch between two ticks is never lost.

Sinks over the sampled state live next door:
:func:`~repro.telemetry.exposition.render_exposition` (Prometheus-style
text), :func:`dump_timeseries_jsonl` (JSONL dump) and
:func:`~repro.telemetry.dashboard.render_dashboard` (ASCII panels).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, TextIO, Tuple

__all__ = [
    "RingSeries",
    "MarkerSeries",
    "TimeSeriesSampler",
    "bind_standard_metrics",
    "bind_cluster_metrics",
    "dump_timeseries_jsonl",
]


class RingSeries:
    """Fixed-capacity ``(time, value)`` series; oldest points drop first.

    ``labels`` optionally carries Prometheus-style labels (e.g.
    ``{"codec": "gzip"}``) and ``metric`` the label-free metric family
    name; the exposition sink uses both.
    """

    __slots__ = ("name", "capacity", "metric", "labels", "dropped",
                 "_ts", "_vs", "_start")

    def __init__(
        self,
        name: str,
        capacity: int = 4096,
        metric: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.name = name
        self.capacity = capacity
        self.metric = metric if metric is not None else name
        self.labels = dict(labels) if labels else {}
        self.dropped = 0
        self._ts: List[float] = []
        self._vs: List[float] = []
        self._start = 0  # ring head once full

    def append(self, t: float, v: float) -> None:
        if v != v:
            raise ValueError(f"NaN sample rejected on series {self.name!r}")
        if len(self._ts) < self.capacity:
            self._ts.append(t)
            self._vs.append(v)
        else:
            self._ts[self._start] = t
            self._vs[self._start] = v
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._ts)

    def points(self) -> Tuple[List[float], List[float]]:
        """``(times, values)`` in chronological order."""
        s = self._start
        if s == 0:
            return list(self._ts), list(self._vs)
        return self._ts[s:] + self._ts[:s], self._vs[s:] + self._vs[:s]

    def values(self) -> List[float]:
        return self.points()[1]

    def last(self) -> Optional[Tuple[float, float]]:
        if not self._ts:
            return None
        i = (self._start - 1) % len(self._ts)
        return self._ts[i], self._vs[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingSeries({self.name!r}, n={len(self)}, dropped={self.dropped})"


class MarkerSeries:
    """Fixed-capacity ``(time, label)`` event markers (band switches)."""

    __slots__ = ("name", "capacity", "dropped", "_events")

    def __init__(self, name: str, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.name = name
        self.capacity = capacity
        self.dropped = 0
        self._events: List[Tuple[float, str]] = []

    def add(self, t: float, label: str) -> None:
        if len(self._events) >= self.capacity:
            self._events.pop(0)
            self.dropped += 1
        self._events.append((t, label))

    def events(self) -> List[Tuple[float, str]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class TimeSeriesSampler:
    """Periodic scraper of registered collectors into ring series.

    Lifecycle::

        sampler = TimeSeriesSampler(interval=0.25)
        sampler.attach(sim, device)   # registers the standard vocabulary
        sampler.start()               # daemon periodic event on sim
        ... run the replay ...
        print(render_dashboard(sampler))

    ``replay(..., sampler=sampler)`` does attach+start for you.
    Collectors are zero-argument callables returning a float (or
    ``None`` to skip the tick); ``register_multi`` handles families
    whose members appear over time (per-codec shares).
    """

    def __init__(self, interval: float = 0.25, capacity: int = 4096) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval!r}")
        self.interval = interval
        self.capacity = capacity
        self.series: Dict[str, RingSeries] = {}
        self.markers: Dict[str, MarkerSeries] = {}
        self.ticks = 0
        self.sim = None
        self.device = None
        self._collectors: List[Tuple[str, Callable[[], Optional[float]]]] = []
        self._multi: List[Tuple[str, Callable[[], Dict[str, float]]]] = []
        self._multi_label_keys: Dict[str, Optional[str]] = {}
        self._periodic = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def series_for(
        self,
        name: str,
        metric: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> RingSeries:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = RingSeries(
                name, self.capacity, metric=metric, labels=labels
            )
        return s

    def register(
        self,
        name: str,
        fn: Callable[[], Optional[float]],
        metric: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Scrape ``fn()`` into series ``name`` every tick."""
        self.series_for(name, metric=metric, labels=labels)
        self._collectors.append((name, fn))

    def register_multi(
        self, prefix: str, fn: Callable[[], Dict[str, float]],
        label_key: Optional[str] = None,
    ) -> None:
        """Scrape a dict-valued family: ``fn() -> {member: value}``.

        Series are created lazily as members appear, named
        ``{prefix}.{member}``; with ``label_key`` the member lands in a
        Prometheus label instead of the metric name.
        """
        self._multi.append((prefix, fn))
        self._multi_label_keys[prefix] = label_key

    def mark(self, channel: str, label: str, t: Optional[float] = None) -> None:
        """Record an exact-time event marker (e.g. a band switch)."""
        m = self.markers.get(channel)
        if m is None:
            m = self.markers[channel] = MarkerSeries(channel)
        if t is None:
            t = self.sim.now if self.sim is not None else 0.0
        m.add(t, label)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim, device) -> None:
        """Bind to a simulator + device and register the standard vocabulary."""
        self.sim = sim
        self.device = device
        bind_standard_metrics(self, device)

    def start(self) -> None:
        """Begin periodic sampling (daemon events on the bound simulator)."""
        if self.sim is None:
            raise RuntimeError("attach(sim, device) before start()")
        if self._periodic is not None:
            return
        self._periodic = self.sim.every(self.interval, self.sample_now)

    def stop(self) -> None:
        if self._periodic is not None:
            self._periodic.cancel()
            self._periodic = None

    @property
    def running(self) -> bool:
        return self._periodic is not None

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_now(self) -> None:
        """Scrape every collector once at the current simulation time."""
        t = self.sim.now if self.sim is not None else 0.0
        for name, fn in self._collectors:
            v = fn()
            if v is None:
                continue
            self.series[name].append(t, float(v))
        for prefix, fn in self._multi:
            label_key = self._multi_label_keys.get(prefix)
            for member, v in fn().items():
                name = f"{prefix}.{member}"
                labels = {label_key: member} if label_key else None
                self.series_for(
                    name, metric=prefix, labels=labels
                ).append(t, float(v))
        self.ticks += 1

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self.series)

    def n_series(self) -> int:
        return len(self.series)


# ----------------------------------------------------------------------
# the standard metric vocabulary
# ----------------------------------------------------------------------
def bind_standard_metrics(sampler: TimeSeriesSampler, device) -> None:
    """Register the fixed scrape vocabulary for one EDC device stack.

    Series registered (≥ 10 on an EDC device): calculated/raw IOPS,
    active intensity band, per-codec write shares, compression ratio,
    per-class slot occupancy, CPU/flash queue depths, GC collections and
    moved bytes, write amplification and the flash busy fraction.
    Audited devices additionally export ``audit.decisions`` and a
    per-shadow ``audit.divergence_share`` family; devices with a bound
    :class:`~repro.recovery.DurableMetadataManager` export the
    ``recovery.*`` family (journal depth, checkpoint staleness,
    metadata write overhead, and the last recovery scan's page reads,
    replay length and recovered-entry counts).  Plans arming latent
    retention / read-disturb models export the ``latent.*`` family, and
    a bound :class:`~repro.flash.scrub.MediaScrubber` exports the
    ``scrub.*`` family (scan/verify/repair/retire counters).
    """
    sim = device.sim
    monitor = device.monitor
    policy = device.policy
    backend = device.backend

    sampler.register(
        "monitor.calculated_iops",
        lambda: monitor.calculated_iops(sim.now),
    )
    sampler.register("monitor.raw_iops", lambda: monitor.raw_iops(sim.now))

    if hasattr(policy, "band_index"):
        sampler.register(
            "policy.band",
            lambda: float(policy.band_index(monitor.calculated_iops(sim.now))),
        )
    # Exact band-switch markers via the selection hook (chained: the
    # PR-1 Telemetry may already be subscribed).
    if hasattr(policy, "on_select"):
        prev_hook = policy.on_select
        state = {"band": None}

        def _on_select(band_idx: int, iops: float) -> None:
            if prev_hook is not None:
                prev_hook(band_idx, iops)
            last = state["band"]
            if last is not None and band_idx != last:
                sampler.mark("band_switch", f"{last}->{band_idx}", t=sim.now)
            state["band"] = band_idx

        policy.on_select = _on_select

    sampler.register_multi(
        "codec.write_share", device.stats.codec_shares, label_key="codec"
    )
    sampler.register(
        "compression.ratio", lambda: device.stats.compression_ratio
    )

    def _occupancy() -> Dict[str, float]:
        return {
            f"{int(round(frac * 100))}pct": share
            for frac, share in device.allocator.occupancy().items()
        }

    sampler.register_multi("alloc.slot_share", _occupancy, label_key="cls")
    sampler.register(
        "alloc.live_slots", lambda: float(device.allocator.live_slots)
    )

    sampler.register("queue.depth.cpu", lambda: float(device.cpu.depth))

    flash_queues = _flash_servers(backend)
    if flash_queues:
        sampler.register(
            "queue.depth.flash",
            lambda: float(sum(q.depth for q in flash_queues)),
        )

    ftls = _ftls(backend)
    if ftls:
        sampler.register(
            "gc.collections",
            lambda: float(sum(f.stats.gc_runs for f in ftls)),
        )
        sampler.register(
            "gc.moved_bytes",
            lambda: float(sum(f.stats.relocated_bytes for f in ftls)),
        )

        def _wa() -> float:
            host = sum(f.stats.host_bytes for f in ftls)
            moved = sum(f.stats.relocated_bytes for f in ftls)
            return (host + moved) / host if host else 1.0

        sampler.register("flash.write_amplification", _wa)

    if flash_queues:
        busy_state = {"t": sim.now,
                      "busy": sum(q.stats.busy_time for q in flash_queues)}

        def _busy_fraction() -> Optional[float]:
            now = sim.now
            busy = sum(q.stats.busy_time for q in flash_queues)
            dt = now - busy_state["t"]
            db = busy - busy_state["busy"]
            busy_state["t"] = now
            busy_state["busy"] = busy
            if dt <= 0:
                return None
            return min(1.0, db / (dt * len(flash_queues)))

        sampler.register("flash.busy_fraction", _busy_fraction)

    # Fault/recovery vocabulary — only present on fault-injected runs
    # (a FaultPlan.attach leaves the injector list on the backend), so
    # baseline scrapes and their exposition output are unchanged.
    injectors = getattr(backend, "fault_injectors", None)
    if injectors:
        from repro.faults.plan import FaultStats

        for fname in FaultStats.FIELDS:
            sampler.register(
                f"faults.{fname}",
                (lambda n=fname: float(
                    sum(getattr(i.stats, n) for i in injectors)
                )),
                metric="faults",
                labels={"kind": fname},
            )
        sampler.register(
            "edc.codec_fallbacks",
            lambda: float(device.stats.codec_fallbacks),
        )
        sampler.register(
            "edc.unrecovered_reads",
            lambda: float(device.unrecovered_reads),
        )
        sampler.register(
            "edc.unrecovered_writes",
            lambda: float(device.unrecovered_writes),
        )
        if hasattr(backend, "degraded"):
            astats = backend.stats
            sampler.register(
                "array.degraded", lambda: 1.0 if backend.degraded else 0.0
            )
            sampler.register(
                "array.degraded_reads", lambda: float(astats.degraded_reads)
            )
            sampler.register(
                "array.degraded_writes", lambda: float(astats.degraded_writes)
            )
            sampler.register(
                "array.rebuilt_rows", lambda: float(astats.rebuilt_rows)
            )
            sampler.register(
                "array.member_failures", lambda: float(astats.member_failures)
            )
            sampler.register(
                "array.unrecovered",
                lambda: float(astats.unrecovered_reads + astats.unrecovered_writes),
            )

    # Latent-error / scrub vocabulary — only present when the fault
    # plan arms retention/read-disturb models (attach leaves them on
    # the backend) or a MediaScrubber is bound to the device, so
    # baseline scrapes and their exposition output are unchanged.
    latent_models = getattr(backend, "latent_models", None)
    if latent_models:
        from repro.faults.latent import LatentStats

        for fname in LatentStats.FIELDS:
            sampler.register(
                f"latent.{fname}",
                (lambda n=fname: float(
                    sum(getattr(m.stats, n) for m in latent_models)
                )),
                metric="latent",
                labels={"kind": fname},
            )
        sampler.register(
            "latent.corrupt_extents_now",
            lambda: float(sum(m.corrupt_count for m in latent_models)),
        )
        sampler.register(
            "edc.corrupt_reads", lambda: float(device.corrupt_reads)
        )

    scrubber = getattr(device, "scrubber", None)
    if scrubber is not None:
        from repro.flash.scrub import ScrubStats

        for fname in ScrubStats.FIELDS:
            sampler.register(
                f"scrub.{fname}",
                (lambda n=fname: float(getattr(scrubber.stats, n))),
                metric="scrub",
                labels={"kind": fname},
            )

    # Recovery vocabulary — only present when a DurableMetadataManager
    # is bound (crash-consistency runs), so baseline scrapes and their
    # exposition output are unchanged.
    recovery = getattr(device, "recovery", None)
    if recovery is not None:
        sampler.register(
            "recovery.journal_pending_records",
            lambda: float(recovery.journal.pending_records),
        )
        sampler.register(
            "recovery.journal_durable_records",
            lambda: float(recovery.journal.durable_records),
        )
        sampler.register(
            "recovery.checkpoint_staleness_s",
            lambda: recovery.checkpoint_staleness_s,
        )
        sampler.register(
            "recovery.meta_write_bytes",
            lambda: float(recovery.stats.meta_write_bytes),
        )
        sampler.register(
            "recovery.meta_device_seconds",
            lambda: recovery.stats.meta_device_seconds,
        )
        sampler.register(
            "recovery.live_extents",
            lambda: float(len(recovery.live_records)),
        )

        def _last_recovery(name: str) -> Optional[float]:
            rep = recovery.last_recovery
            if rep is None:
                return None
            return float(getattr(rep, name))

        for rname in ("scan_pages_read", "journal_replay_len",
                      "oob_only_entries", "recovered_entries"):
            sampler.register(
                f"recovery.{rname}",
                (lambda n=rname: _last_recovery(n)),
            )

    # Trace-accounting vocabulary — only present on traced devices, so
    # baseline scrapes and their exposition output are unchanged.
    # spans_dropped makes the tracer's retention cap visible: a capped
    # trace can no longer masquerade as a complete one.
    telemetry = getattr(device, "telemetry", None)
    if telemetry is not None and getattr(telemetry, "enabled", False):
        tracer = telemetry.tracer
        sampler.register(
            "trace.spans_dropped", lambda: float(tracer.dropped)
        )
        sampler.register(
            "trace.retained_spans", lambda: float(len(tracer.spans))
        )

    # Decision-audit vocabulary — only present on audited runs, so
    # baseline scrapes and their exposition output are unchanged.
    auditor = getattr(device, "auditor", None)
    if auditor is not None:
        sampler.register(
            "audit.decisions", lambda: float(auditor.n_decisions)
        )
        sampler.register_multi(
            "audit.divergence_share",
            auditor.divergence_shares,
            label_key="shadow",
        )

    # Device-health vocabulary — only present when a DeviceHealth is
    # bound (``--health`` runs), so baseline scrapes and their
    # exposition output are unchanged.  SMART snapshots and the space
    # waterfall walk device state, so one snapshot per tick is computed
    # lazily and shared across the family's collectors.
    health = getattr(device, "health", None)
    if health is not None and getattr(health, "enabled", False):
        _hcache: Dict[str, object] = {"t": None, "smart": None, "wf": None}

        def _smart():
            now = sim.now
            if _hcache["t"] != now:
                _hcache["t"] = now
                _hcache["smart"] = health.smart(observed_seconds=now)
                _hcache["wf"] = health.waterfall()
            return _hcache["smart"]

        def _wf():
            _smart()
            return _hcache["wf"]

        for sname, getter in (
            ("wear_p50", lambda s: s.wear_p50),
            ("wear_p95", lambda s: s.wear_p95),
            ("wear_max", lambda s: float(s.wear_max)),
            ("total_erases", lambda s: float(s.total_erases)),
            ("spare_blocks", lambda s: float(s.spare_blocks)),
            ("retired_blocks", lambda s: float(s.retired_blocks)),
            ("utilization", lambda s: s.utilization),
            ("write_amplification", lambda s: s.write_amplification),
            ("gc_efficiency", lambda s: s.gc_efficiency),
            ("wear_fraction", lambda s: s.wear_fraction),
        ):
            sampler.register(
                f"smart.{sname}", (lambda g=getter: g(_smart()))
            )
        sampler.register_multi(
            "smart.wa_bytes",
            lambda: {k: float(v) for k, v in _smart().wa_split().items()},
            label_key="source",
        )

        for wname, getter in (
            ("logical_bytes", lambda w: float(w.logical_bytes)),
            ("payload_bytes", lambda w: float(w.payload_bytes)),
            ("slack_bytes", lambda w: float(w.slack_bytes)),
            ("live_slot_bytes", lambda w: float(w.live_slot_bytes)),
            ("free_slot_bytes", lambda w: float(w.free_slot_bytes)),
            ("retired_bytes", lambda w: float(w.retired_bytes)),
            ("physical_bytes", lambda w: float(w.effective_physical_bytes)),
            ("realized_ratio", lambda w: w.realized_ratio),
        ):
            sampler.register(
                f"space.{wname}", (lambda g=getter: g(_wf()))
            )
        sampler.register_multi(
            "space.slack_by_class",
            lambda: {
                f"{int(round(frac * 100))}pct": float(v)
                for frac, v in _wf().slack_by_class.items()
            },
            label_key="cls",
        )

        heat = health.heat
        sampler.register(
            "heat.regions",
            lambda: float(len(set(heat._write) | set(heat._read))),
        )
        sampler.register("heat.touches", lambda: float(heat.touches))
        sampler.register_multi(
            "heat.write",
            lambda: {
                str(r): h for r, h in heat.hottest(sim.now, n=8, op="W")
            },
            label_key="region",
        )
        sampler.register_multi(
            "heat.read",
            lambda: {
                str(r): h for r, h in heat.hottest(sim.now, n=8, op="R")
            },
            label_key="region",
        )
        sampler.register(
            "gc.episodes", lambda: float(health.episodes_total)
        )


def bind_cluster_metrics(
    sampler: TimeSeriesSampler, fleet, tracing=None
) -> None:
    """Register the ``cluster.*`` fleet vocabulary for one cluster run.

    ``fleet`` is a :class:`~repro.cluster.fleet.ClusterFleet`.  Binds
    the sampler to the fleet's simulator (no single device: the fleet
    is the subject) and registers per-shard depth/occupancy/ratio
    families (``shard`` label), per-tenant backlog/p95/SLO-violation
    families (``tenant`` label), and scalar fleet series — admission
    backlog, physical imbalance, active migrations and cumulative
    migration bytes.  On a traced fleet (``tracing`` defaults to the
    fleet's own :class:`~repro.telemetry.disttrace.DistTracer`, if any)
    the ``trace.*`` accounting family rides along.  Call
    :meth:`TimeSeriesSampler.start` afterwards.
    """
    sampler.sim = fleet.sim
    cluster = fleet.cluster
    devices = dict(fleet.devices)
    if tracing is None:
        tracing = getattr(fleet, "tracing", None)
    if tracing is not None and getattr(tracing, "enabled", False):
        tracer = tracing.tracer
        sampler.register(
            "trace.spans_dropped", lambda: float(tracer.dropped)
        )
        sampler.register(
            "trace.retained_spans", lambda: float(len(tracer.spans))
        )
        sampler.register(
            "trace.open_spans", lambda: float(tracer.open_spans)
        )
        sampler.register(
            "trace.open_requests", lambda: float(tracing.open_traces())
        )

    sampler.register_multi(
        "cluster.shard_depth",
        lambda: {n: float(d.outstanding) for n, d in devices.items()},
        label_key="shard",
    )
    sampler.register_multi(
        "cluster.shard_physical_bytes",
        lambda: {
            n: float(d.allocator.physical_bytes) for n, d in devices.items()
        },
        label_key="shard",
    )
    sampler.register_multi(
        "cluster.shard_ratio",
        lambda: {n: d.stats.compression_ratio for n, d in devices.items()},
        label_key="shard",
    )
    tenants = cluster.scheduler.tenants
    sampler.register_multi(
        "cluster.tenant_backlog",
        lambda: {n: float(len(st.backlog)) for n, st in tenants.items()},
        label_key="tenant",
    )
    sampler.register_multi(
        "cluster.tenant_p95",
        lambda: {
            n: st.latency.percentile(95)
            for n, st in tenants.items() if st.latency.count
        },
        label_key="tenant",
    )
    sampler.register_multi(
        "cluster.tenant_slo_violations",
        lambda: {
            n: float(st.stats.slo_violations) for n, st in tenants.items()
        },
        label_key="tenant",
    )
    sampler.register(
        "cluster.backlog", lambda: float(cluster.scheduler.backlog)
    )
    sampler.register("cluster.imbalance", fleet.balancer.imbalance)
    sampler.register(
        "cluster.migrations_active",
        lambda: float(len(fleet.orchestrator.active)),
    )
    sampler.register(
        "cluster.migration_bytes",
        lambda: float(fleet.orchestrator.migration_bytes()),
    )
    sampler.register_multi(
        "cluster.unrecovered",
        lambda: {
            n: float(st.stats.unrecovered)
            for n, st in tenants.items() if not st.spec.internal
        },
        label_key="tenant",
    )

    # Fault-tolerance vocabulary — only present when the replication
    # manager is attached, so fault-free rf=1 scrapes are unchanged.
    replication = getattr(fleet, "replication", None)
    if replication is not None:
        rstats = replication.stats
        sampler.register(
            "cluster.replica_writes", lambda: float(rstats.replica_writes)
        )
        sampler.register(
            "cluster.retries", lambda: float(rstats.retries)
        )
        sampler.register(
            "cluster.failovers", lambda: float(rstats.failovers)
        )
        sampler.register(
            "cluster.hedged_reads", lambda: float(rstats.hedged_reads)
        )
        sampler.register(
            "cluster.quorum_failures",
            lambda: float(rstats.quorum_failures),
        )
        sampler.register(
            "cluster.rebuilds_active",
            lambda: float(len(replication.rebuilding)),
        )
        sampler.register(
            "cluster.rebuild_bytes", lambda: float(rstats.rebuild_bytes)
        )
    health = getattr(fleet, "health", None)
    if health is not None:
        sampler.register(
            "cluster.shards_alive", lambda: float(health.alive_count())
        )
        sampler.register_multi(
            "cluster.shard_health",
            lambda: {
                n: {"alive": 1.0, "suspect": 0.5, "dead": 0.0}[s]
                for n, s in health.states().items()
            },
            label_key="shard",
        )


def _flash_servers(backend) -> List[object]:
    """All queue servers below ``backend`` (RAID members recursed)."""
    out: List[object] = []
    queue = getattr(backend, "queue", None)
    if queue is not None:
        out.append(queue)
    for dev in getattr(backend, "devices", ()) or ():
        out.extend(_flash_servers(dev))
    return out


def _ftls(backend) -> List[object]:
    out: List[object] = []
    ftl = getattr(backend, "ftl", None)
    if ftl is not None:
        out.append(ftl)
    for dev in getattr(backend, "devices", ()) or ():
        out.extend(_ftls(dev))
    return out


# ----------------------------------------------------------------------
# JSONL sink
# ----------------------------------------------------------------------
def dump_timeseries_jsonl(sampler: TimeSeriesSampler, fp: TextIO) -> int:
    """Write every series (one JSON object per line) plus marker lines.

    Line shapes::

        {"series": name, "metric": ..., "labels": {...},
         "t": [...], "v": [...], "dropped": n}
        {"markers": channel, "events": [[t, label], ...], "dropped": n}

    Returns the number of lines written.
    """
    n = 0
    for name in sorted(sampler.series):
        s = sampler.series[name]
        ts, vs = s.points()
        fp.write(json.dumps({
            "series": name,
            "metric": s.metric,
            "labels": s.labels,
            "t": ts,
            "v": vs,
            "dropped": s.dropped,
        }, sort_keys=True))
        fp.write("\n")
        n += 1
    for channel in sorted(sampler.markers):
        m = sampler.markers[channel]
        fp.write(json.dumps({
            "markers": channel,
            "events": [[t, label] for t, label in m.events()],
            "dropped": m.dropped,
        }, sort_keys=True))
        fp.write("\n")
        n += 1
    return n
