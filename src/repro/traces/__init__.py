"""Workload substrate: block I/O traces.

The paper replays four block traces — Fin1 and Fin2 (OLTP, Storage
Performance Council / UMass) and Usr_0 and Prxy_0 (MSR Cambridge
enterprise volumes).  Those traces are not redistributable, so this
package provides both:

- parsers for the real SPC and MSR CSV formats
  (:mod:`~repro.traces.spc`, :mod:`~repro.traces.msr`) — drop the real
  files in and they replay unchanged; and
- synthetic generators (:mod:`~repro.traces.synthetic`) parameterised to
  each trace's published characteristics (read/write ratio, raw IOPS,
  request size) with the ON/OFF burst-idle alternation of paper Fig 3,
  with canned parameter sets in :mod:`~repro.traces.workloads`.
"""

from repro.traces.model import IORequest, Trace, TraceStats
from repro.traces.msr import parse_msr, write_msr
from repro.traces.spc import parse_spc, write_spc
from repro.traces.analysis import (
    burstiness_summary,
    detect_bursts,
    interarrival_stats,
)
from repro.traces.synthetic import BurstModel, SyntheticTraceGenerator, WorkloadParams
from repro.traces.transform import (
    clamp_sizes,
    concat,
    overlay,
    rate_scale,
    shift,
    time_scale,
)
from repro.traces.workloads import (
    WORKLOADS,
    fin1,
    fin2,
    make_workload,
    prxy0,
    usr0,
)

__all__ = [
    "IORequest",
    "Trace",
    "TraceStats",
    "parse_spc",
    "write_spc",
    "parse_msr",
    "write_msr",
    "BurstModel",
    "WorkloadParams",
    "SyntheticTraceGenerator",
    "WORKLOADS",
    "make_workload",
    "fin1",
    "fin2",
    "usr0",
    "prxy0",
    "burstiness_summary",
    "detect_bursts",
    "interarrival_stats",
    "overlay",
    "time_scale",
    "rate_scale",
    "shift",
    "concat",
    "clamp_sizes",
]
