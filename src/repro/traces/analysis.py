"""Workload analysis: burstiness, inter-arrivals and access skew.

The paper's motivation (§II-C) leans on three workload properties —
burst/idle alternation, high inter-arrival variance, and skewed block
popularity.  These analyzers quantify all three on any
:class:`~repro.traces.model.Trace`, real or synthetic, and back the
Fig 3 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.traces.model import Trace

__all__ = [
    "InterarrivalStats",
    "interarrival_stats",
    "BurstPeriod",
    "detect_bursts",
    "BurstinessSummary",
    "burstiness_summary",
    "access_skew",
]


@dataclass(frozen=True)
class InterarrivalStats:
    """Distributional summary of request inter-arrival times (seconds)."""

    n: int
    mean: float
    median: float
    p99: float
    max_gap: float
    cv: float  # coefficient of variation; Poisson ~ 1, bursty >> 1

    @property
    def is_bursty(self) -> bool:
        """High inter-arrival variance is the burstiness fingerprint."""
        return self.cv > 1.5


def interarrival_stats(trace: Trace) -> InterarrivalStats:
    """Inter-arrival statistics of a trace (needs >= 2 requests)."""
    if len(trace) < 2:
        return InterarrivalStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    times = np.array([r.time for r in trace])
    gaps = np.diff(times)
    mean = float(gaps.mean())
    std = float(gaps.std())
    return InterarrivalStats(
        n=len(gaps),
        mean=mean,
        median=float(np.median(gaps)),
        p99=float(np.percentile(gaps, 99)),
        max_gap=float(gaps.max()),
        cv=(std / mean) if mean > 0 else 0.0,
    )


@dataclass(frozen=True)
class BurstPeriod:
    """One detected burst: consecutive bins above the threshold."""

    start: float
    end: float
    mean_rate: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def detect_bursts(
    trace: Trace,
    bin_width: float = 1.0,
    threshold_factor: float = 3.0,
) -> List[BurstPeriod]:
    """Find periods whose calculated-IOPS rate exceeds ``threshold_factor``
    times the trace mean (consecutive hot bins merge into one burst)."""
    if threshold_factor <= 0:
        raise ValueError(f"threshold_factor must be positive: {threshold_factor!r}")
    times, rates = trace.intensity_series(bin_width=bin_width)
    if len(rates) == 0:
        return []
    threshold = threshold_factor * max(rates.mean(), 1e-12)
    bursts: List[BurstPeriod] = []
    start = None
    acc: List[float] = []
    for t, r in zip(times, rates):
        if r >= threshold:
            if start is None:
                start = t
            acc.append(r)
        elif start is not None:
            bursts.append(BurstPeriod(start, t, float(np.mean(acc))))
            start, acc = None, []
    if start is not None:
        bursts.append(
            BurstPeriod(start, times[-1] + bin_width, float(np.mean(acc)))
        )
    return bursts


@dataclass(frozen=True)
class BurstinessSummary:
    """Fig 3 in numbers: how bursty/idle a workload is."""

    peak_rate: float
    mean_rate: float
    idle_fraction: float
    burst_fraction: float
    n_bursts: int

    @property
    def peak_to_mean(self) -> float:
        if self.mean_rate <= 0:
            return 0.0
        return self.peak_rate / self.mean_rate


def burstiness_summary(
    trace: Trace, bin_width: float = 1.0, idle_rate: Optional[float] = None
) -> BurstinessSummary:
    """Summarise burst/idle structure (§II-C's claim, quantified).

    ``idle_rate`` is the "little or no external load" cut-off; by default
    it is relative — 5% of the peak rate — so traces of any absolute
    intensity classify sensibly.
    """
    _, rates = trace.intensity_series(bin_width=bin_width)
    if len(rates) == 0:
        return BurstinessSummary(0.0, 0.0, 0.0, 0.0, 0)
    if idle_rate is None:
        idle_rate = max(1.0, 0.05 * float(rates.max()))
    bursts = detect_bursts(trace, bin_width=bin_width)
    burst_time = sum(b.duration for b in bursts)
    horizon = len(rates) * bin_width
    return BurstinessSummary(
        peak_rate=float(rates.max()),
        mean_rate=float(rates.mean()),
        idle_fraction=float((rates < idle_rate).mean()),
        burst_fraction=burst_time / horizon,
        n_bursts=len(bursts),
    )


def access_skew(
    trace: Trace, block: int = 4096, hot_fraction: float = 0.2
) -> Tuple[float, float]:
    """(share of accesses to the hottest blocks, Gini coefficient).

    The first value answers "what fraction of accesses hit the hottest
    ``hot_fraction`` of touched blocks" (e.g. 80/20 skew → ~0.8); the
    Gini coefficient summarises the whole popularity curve (0 = uniform,
    → 1 = fully concentrated).
    """
    if not 0 < hot_fraction <= 1:
        raise ValueError(f"hot_fraction must be in (0,1]: {hot_fraction!r}")
    counts: dict[int, int] = {}
    for r in trace:
        for blk in range(r.lba // block, (r.end + block - 1) // block):
            counts[blk] = counts.get(blk, 0) + 1
    if not counts:
        return 0.0, 0.0
    values = np.sort(np.array(list(counts.values()), dtype=np.float64))[::-1]
    total = values.sum()
    k = max(1, int(round(len(values) * hot_fraction)))
    hot_share = float(values[:k].sum() / total)
    # Gini over the ascending distribution.
    asc = values[::-1]
    n = len(asc)
    gini = float((2 * np.arange(1, n + 1) - n - 1).dot(asc) / (n * total))
    return hot_share, gini
