"""Block I/O trace model.

A trace is an ordered sequence of timestamped read/write requests at
byte addresses.  :class:`TraceStats` computes the characteristics the
paper reports in its Table II — read/write ratio, raw IOPS, average
request size — plus the sequentiality and footprint numbers the EDC
mechanisms care about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["IORequest", "Trace", "TraceStats", "READ", "WRITE"]

READ = "R"
WRITE = "W"


@dataclass(frozen=True)
class IORequest:
    """One block I/O request.

    ``lba`` and ``nbytes`` are in bytes; ``time`` in seconds from trace
    start.
    """

    time: float
    op: str
    lba: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative timestamp: {self.time!r}")
        if self.op not in (READ, WRITE):
            raise ValueError(f"op must be 'R' or 'W', got {self.op!r}")
        if self.lba < 0:
            raise ValueError(f"negative LBA: {self.lba!r}")
        if self.nbytes <= 0:
            raise ValueError(f"request size must be positive: {self.nbytes!r}")

    @property
    def is_read(self) -> bool:
        return self.op == READ

    @property
    def is_write(self) -> bool:
        return self.op == WRITE

    @property
    def end(self) -> int:
        """First byte past the request."""
        return self.lba + self.nbytes


@dataclass(frozen=True)
class TraceStats:
    """Summary characteristics of a trace (the paper's Table II row)."""

    name: str
    n_requests: int
    reads: int
    writes: int
    read_ratio: float
    duration: float
    raw_iops: float
    avg_request_bytes: float
    avg_read_bytes: float
    avg_write_bytes: float
    footprint_blocks: int
    sequential_fraction: float

    @property
    def write_ratio(self) -> float:
        return 1.0 - self.read_ratio


class Trace:
    """An ordered, timestamp-sorted sequence of :class:`IORequest`."""

    def __init__(self, name: str, requests: Iterable[IORequest]) -> None:
        self.name = name
        self._requests: List[IORequest] = list(requests)
        if any(
            self._requests[i].time > self._requests[i + 1].time
            for i in range(len(self._requests) - 1)
        ):
            self._requests.sort(key=lambda r: r.time)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self._requests)

    def __getitem__(self, idx: int) -> IORequest:
        return self._requests[idx]

    @property
    def requests(self) -> Sequence[IORequest]:
        return self._requests

    @property
    def duration(self) -> float:
        """Seconds from trace start to the last request's arrival."""
        return self._requests[-1].time if self._requests else 0.0

    # ------------------------------------------------------------------
    def head(self, n: int) -> "Trace":
        """The first ``n`` requests as a new trace."""
        return Trace(self.name, self._requests[:n])

    def window(self, start: float, end: float) -> "Trace":
        """Requests with ``start <= time < end``, re-based to start at 0."""
        if end <= start:
            raise ValueError(f"empty window: [{start!r}, {end!r})")
        reqs = [
            IORequest(r.time - start, r.op, r.lba, r.nbytes)
            for r in self._requests
            if start <= r.time < end
        ]
        return Trace(self.name, reqs)

    def filter(self, predicate: Callable[[IORequest], bool]) -> "Trace":
        return Trace(self.name, [r for r in self._requests if predicate(r)])

    def scaled_addresses(self, max_bytes: int, block: int = 4096) -> "Trace":
        """Wrap addresses into ``[0, max_bytes)`` preserving block alignment.

        Real traces address volumes far larger than the scaled-down
        simulated device; modulo-folding preserves the overwrite/reuse
        structure that drives GC while fitting the device.
        """
        if max_bytes <= 0 or max_bytes % block:
            raise ValueError("max_bytes must be a positive multiple of block")
        nblocks = max_bytes // block
        reqs = []
        for r in self._requests:
            blk = (r.lba // block) % nblocks
            nbytes = min(r.nbytes, max_bytes - blk * block)
            reqs.append(IORequest(r.time, r.op, blk * block, nbytes))
        return Trace(self.name, reqs)

    # ------------------------------------------------------------------
    def stats(self, block: int = 4096) -> TraceStats:
        """Table II-style characteristics of this trace."""
        n = len(self._requests)
        if n == 0:
            return TraceStats(self.name, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)
        sizes = np.array([r.nbytes for r in self._requests], dtype=np.float64)
        is_read = np.array([r.is_read for r in self._requests], dtype=bool)
        reads = int(is_read.sum())
        writes = n - reads
        duration = max(self.duration, 1e-9)
        footprint: set[int] = set()
        sequential = 0
        prev_end: Optional[int] = None
        for r in self._requests:
            for blk in range(r.lba // block, (r.end + block - 1) // block):
                footprint.add(blk)
            if prev_end is not None and r.lba == prev_end:
                sequential += 1
            prev_end = r.end
        return TraceStats(
            name=self.name,
            n_requests=n,
            reads=reads,
            writes=writes,
            read_ratio=reads / n,
            duration=duration,
            raw_iops=n / duration,
            avg_request_bytes=float(sizes.mean()),
            avg_read_bytes=float(sizes[is_read].mean()) if reads else 0.0,
            avg_write_bytes=float(sizes[~is_read].mean()) if writes else 0.0,
            footprint_blocks=len(footprint),
            sequential_fraction=sequential / n,
        )

    def intensity_series(self, bin_width: float = 1.0, page: int = 4096):
        """(times, calculated-IOPS) series for burstiness plots (Fig 3).

        Values are 4 KB-normalised page counts per second per bin —
        the same quantity the Workload Monitor tracks.
        """
        from repro.sim.metrics import TimeSeries

        ts = TimeSeries(bin_width)
        for r in self._requests:
            pages = max(1, (r.nbytes + page - 1) // page)
            ts.add(r.time, pages)
        return ts.rates()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r}, n={len(self)}, dur={self.duration:.1f}s)"
