"""MSR Cambridge trace format.

The SNIA IOTTA repository distributes the MSR Cambridge enterprise
traces (usr_0, prxy_0, …) as CSV with one request per line:

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

``Timestamp`` is a Windows FILETIME (100 ns ticks since 1601-01-01),
``Type`` is ``Read``/``Write``, ``Offset`` and ``Size`` are bytes, and
``ResponseTime`` is in 100 ns ticks (ignored here — we re-measure it).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.traces.model import IORequest, READ, Trace, WRITE

__all__ = ["parse_msr", "write_msr", "FILETIME_TICKS_PER_SECOND"]

FILETIME_TICKS_PER_SECOND = 10_000_000


class MsrFormatError(ValueError):
    """Raised on malformed MSR trace lines."""


def _iter_lines(source: Union[str, Path, Iterable[str]]) -> Iterable[str]:
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii", errors="replace") as fh:
            yield from fh
    else:
        yield from source


def parse_msr(
    source: Union[str, Path, Iterable[str]],
    name: str = "msr",
    disk: Optional[int] = None,
    max_requests: Optional[int] = None,
) -> Trace:
    """Parse an MSR Cambridge CSV trace.

    Timestamps are re-based so the first kept request arrives at t=0.

    Parameters
    ----------
    disk:
        Keep only this ``DiskNumber`` (``None`` keeps all, separating
        disks into disjoint address regions).
    """
    requests = []
    first_ticks: Optional[int] = None
    disk_region = 1 << 44
    for lineno, line in enumerate(_iter_lines(source), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) < 6:
            raise MsrFormatError(f"line {lineno}: expected 7 fields, got {len(parts)}")
        try:
            ticks = int(parts[0])
            line_disk = int(parts[2])
            typ = parts[3].strip().lower()
            offset = int(parts[4])
            size = int(parts[5])
        except ValueError as exc:
            raise MsrFormatError(f"line {lineno}: {exc}") from exc
        if disk is not None and line_disk != disk:
            continue
        if typ not in ("read", "write"):
            raise MsrFormatError(f"line {lineno}: bad type {parts[3]!r}")
        if size <= 0:
            continue
        if first_ticks is None:
            first_ticks = ticks
        t = (ticks - first_ticks) / FILETIME_TICKS_PER_SECOND
        if t < 0:
            continue  # out-of-order stragglers before the rebase origin
        lba = offset + (0 if disk is not None else line_disk * disk_region)
        requests.append(IORequest(t, READ if typ == "read" else WRITE, lba, size))
        if max_requests is not None and len(requests) >= max_requests:
            break
    return Trace(name, requests)


def write_msr(
    trace: Trace,
    destination: Union[str, Path, io.TextIOBase],
    hostname: str = "host",
    disk: int = 0,
) -> None:
    """Write ``trace`` in MSR Cambridge CSV format."""

    def _emit(fh) -> None:
        for r in trace:
            ticks = int(round(r.time * FILETIME_TICKS_PER_SECOND))
            typ = "Read" if r.is_read else "Write"
            fh.write(f"{ticks},{hostname},{disk},{typ},{r.lba},{r.nbytes},0\n")

    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as fh:
            _emit(fh)
    else:
        _emit(destination)
