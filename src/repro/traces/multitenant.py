"""Multi-tenant interleaved trace generation.

The cluster tier serves many tenants at once; its exhibits need a
workload where distinct tenants with distinct personalities (read-heavy
vs. write-heavy, bursty vs. steady) overlap on one clock.  Each tenant
gets its own :class:`~repro.traces.synthetic.SyntheticTraceGenerator`
with a tenant-specific seed, cycling through the canned Table II
workload personalities, so the interleaved load is fully reproducible
and any single tenant's stream is independent of how many neighbours it
has (adding a tenant never perturbs another tenant's trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.traces.model import IORequest, Trace
from repro.traces.synthetic import SyntheticTraceGenerator
from repro.traces.workloads import WORKLOADS

__all__ = ["TenantStream", "make_tenant_streams", "interleave"]


@dataclass(frozen=True)
class TenantStream:
    """One tenant's private request stream (tenant-local addresses)."""

    tenant: str
    workload: str
    trace: Trace


def make_tenant_streams(
    tenants: Sequence[str],
    max_requests: int = 2_000,
    duration: Optional[float] = None,
    workloads: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> List[TenantStream]:
    """One reproducible stream per tenant, personalities cycled.

    ``workloads`` names the personality rotation (defaults to the
    canned Table II set in name order); tenant ``i`` runs personality
    ``workloads[i % len(workloads)]`` with seed ``seed + i``.
    """
    if not tenants:
        raise ValueError("at least one tenant name is required")
    if len(set(tenants)) != len(tenants):
        raise ValueError(f"duplicate tenant names: {list(tenants)}")
    names = list(workloads) if workloads is not None else sorted(WORKLOADS)
    for name in names:
        if name not in WORKLOADS:
            raise KeyError(
                f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
            )
    streams: List[TenantStream] = []
    for i, tenant in enumerate(tenants):
        wl = names[i % len(names)]
        trace = SyntheticTraceGenerator(
            WORKLOADS[wl], seed=seed + i
        ).generate(duration=duration, max_requests=max_requests)
        streams.append(
            TenantStream(
                tenant=tenant,
                workload=wl,
                trace=Trace(f"{tenant}:{trace.name}", trace.requests),
            )
        )
    return streams


def interleave(streams: Sequence[TenantStream]) -> Trace:
    """Merge streams into one time-ordered trace (for analysis only).

    Ties break on stream order, matching the deterministic order in
    which the cluster replayer schedules them.  The merged trace loses
    tenant identity — replay through the cluster uses the per-tenant
    streams directly.
    """
    tagged: List[Tuple[float, int, int, IORequest]] = []
    for si, stream in enumerate(streams):
        for ri, req in enumerate(stream.trace):
            tagged.append((req.time, si, ri, req))
    tagged.sort(key=lambda t: (t[0], t[1], t[2]))
    name = "+".join(s.tenant for s in streams) or "empty"
    return Trace(f"interleaved:{name}", [t[3] for t in tagged])
