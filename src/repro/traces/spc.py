"""SPC (Storage Performance Council) trace format.

The UMass trace repository distributes the Financial1/Financial2 OLTP
traces in SPC format: one request per line,

    ASU,LBA,Size,Opcode,Timestamp[,...]

where ``ASU`` is the application storage unit number, ``LBA`` the block
address in 512-byte units, ``Size`` the request size in bytes,
``Opcode`` is ``r``/``R`` or ``w``/``W``, and ``Timestamp`` is seconds
(float) from trace start.  Extra trailing fields are ignored.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.traces.model import IORequest, READ, Trace, WRITE

__all__ = ["parse_spc", "write_spc", "SPC_SECTOR"]

#: SPC LBAs are in 512-byte sectors.
SPC_SECTOR = 512


class SpcFormatError(ValueError):
    """Raised on malformed SPC trace lines."""


def _iter_lines(source: Union[str, Path, Iterable[str]]) -> Iterable[str]:
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii", errors="replace") as fh:
            yield from fh
    else:
        yield from source


def parse_spc(
    source: Union[str, Path, Iterable[str]],
    name: str = "spc",
    asu: Optional[int] = None,
    max_requests: Optional[int] = None,
) -> Trace:
    """Parse an SPC-format trace.

    Parameters
    ----------
    source:
        A path or an iterable of lines.
    asu:
        Keep only requests for this application storage unit (the UMass
        financial traces interleave several); ``None`` keeps all, with
        ASUs separated into disjoint address ranges.
    max_requests:
        Stop after this many parsed requests.
    """
    requests = []
    # Each ASU gets its own 1 TB address region so different units never
    # alias when the caller keeps all of them.
    asu_region = 1 << 40
    for lineno, line in enumerate(_iter_lines(source), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) < 5:
            raise SpcFormatError(f"line {lineno}: expected 5 fields, got {len(parts)}")
        try:
            line_asu = int(parts[0])
            lba = int(parts[1])
            size = int(parts[2])
            opcode = parts[3].strip().lower()
            ts = float(parts[4])
        except ValueError as exc:
            raise SpcFormatError(f"line {lineno}: {exc}") from exc
        if asu is not None and line_asu != asu:
            continue
        if opcode not in ("r", "w"):
            raise SpcFormatError(f"line {lineno}: bad opcode {parts[3]!r}")
        if size <= 0:
            continue  # zero-length requests occur in the wild; skip them
        offset = lba * SPC_SECTOR + (0 if asu is not None else line_asu * asu_region)
        requests.append(
            IORequest(ts, READ if opcode == "r" else WRITE, offset, size)
        )
        if max_requests is not None and len(requests) >= max_requests:
            break
    return Trace(name, requests)


def write_spc(trace: Trace, destination: Union[str, Path, io.TextIOBase]) -> None:
    """Write ``trace`` in SPC format (single ASU 0)."""

    def _emit(fh) -> None:
        for r in trace:
            if r.lba % SPC_SECTOR:
                raise SpcFormatError(
                    f"LBA {r.lba} not sector-aligned; SPC uses 512-byte units"
                )
            fh.write(
                f"0,{r.lba // SPC_SECTOR},{r.nbytes},{r.op.lower()},{r.time:.6f}\n"
            )

    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as fh:
            _emit(fh)
    else:
        _emit(destination)
