"""Synthetic block-trace generation with ON/OFF burstiness.

The paper's motivation (§II-C, Fig 3) is that real workloads alternate
bursty periods with idle periods.  The generator here produces exactly
that structure: an alternating-renewal (ON/OFF) process with
exponentially distributed period lengths, Poisson arrivals within each
period, a configurable read/write mix, an empirical request-size
distribution, tunable write sequentiality (runs of address-contiguous
writes feed the Sequentiality Detector) and a hot/cold address skew
(overwrites of hot blocks drive garbage collection).

All randomness flows from one seeded :class:`numpy.random.Generator`,
so traces are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.traces.model import IORequest, READ, Trace, WRITE

__all__ = ["BurstModel", "WorkloadParams", "SyntheticTraceGenerator"]


@dataclass(frozen=True)
class BurstModel:
    """Alternating ON (burst) / OFF (idle) periods.

    Period lengths are exponential with the given means; arrival rates
    within each period are Poisson.  Each ON period's rate is drawn from
    ``on_levels`` — real workloads mix moderate bursts with occasional
    extreme ones, which is what gives an intensity-banded policy three
    distinct regimes to work with.  When ``on_levels`` is ``None`` every
    ON period runs at ``on_iops``.
    """

    on_iops: float = 500.0
    off_iops: float = 20.0
    on_duration_mean: float = 2.0
    off_duration_mean: float = 8.0
    #: optional (iops, probability) levels for ON periods
    on_levels: Optional[Tuple[Tuple[float, float], ...]] = None

    def __post_init__(self) -> None:
        if self.on_iops <= 0 or self.off_iops < 0:
            raise ValueError("burst rates must be positive (off may be 0)")
        if self.on_duration_mean <= 0 or self.off_duration_mean <= 0:
            raise ValueError("period means must be positive")
        if self.on_levels is not None:
            if not self.on_levels:
                raise ValueError("on_levels must be non-empty when given")
            if any(r <= 0 for r, _ in self.on_levels):
                raise ValueError("on_levels rates must be positive")
            total = sum(p for _, p in self.on_levels)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(f"on_levels probabilities sum to {total}")

    @property
    def mean_on_iops(self) -> float:
        """Expected arrival rate during an ON period."""
        if self.on_levels is None:
            return self.on_iops
        return sum(r * p for r, p in self.on_levels)

    @property
    def mean_iops(self) -> float:
        """Long-run average arrival rate."""
        w_on = self.on_duration_mean
        w_off = self.off_duration_mean
        return (self.mean_on_iops * w_on + self.off_iops * w_off) / (w_on + w_off)


@dataclass(frozen=True)
class WorkloadParams:
    """Full parameterisation of one synthetic workload (Table II row)."""

    name: str
    read_ratio: float
    #: (size_bytes, probability) pairs; sizes should be 512-aligned
    size_dist: Tuple[Tuple[int, float], ...] = ((4096, 1.0),)
    #: probability that a write continues the preceding write's run
    write_seq_prob: float = 0.3
    #: probability that a read continues the preceding read address
    read_seq_prob: float = 0.2
    #: mean arrival gap (seconds) of a sequential continuation request.
    #: Contiguous block requests come from one upper-layer operation that
    #: the block layer split, so they arrive back-to-back (tens of µs),
    #: not at fresh Poisson gaps.
    seq_arrival_gap: float = 40e-6
    burst: BurstModel = field(default_factory=BurstModel)
    #: addressable bytes (folded onto the device by the harness)
    address_space: int = 1 << 30
    #: fraction of the address space that is hot
    hot_fraction: float = 0.2
    #: fraction of random accesses that go to the hot region
    hot_weight: float = 0.8
    block: int = 4096

    def __post_init__(self) -> None:
        if not 0 <= self.read_ratio <= 1:
            raise ValueError(f"read_ratio must be in [0,1]: {self.read_ratio!r}")
        total = sum(p for _, p in self.size_dist)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"size distribution sums to {total}, expected 1.0")
        if any(s <= 0 for s, _ in self.size_dist):
            raise ValueError("request sizes must be positive")
        if not 0 <= self.write_seq_prob <= 1 or not 0 <= self.read_seq_prob <= 1:
            raise ValueError("sequentiality probabilities must be in [0,1]")
        if not 0 < self.hot_fraction <= 1 or not 0 <= self.hot_weight <= 1:
            raise ValueError("hot-region parameters out of range")
        if self.address_space < self.block:
            raise ValueError("address space smaller than one block")

    @property
    def mean_request_bytes(self) -> float:
        return sum(s * p for s, p in self.size_dist)


class SyntheticTraceGenerator:
    """Generates reproducible traces from :class:`WorkloadParams`."""

    def __init__(self, params: WorkloadParams, seed: int = 0) -> None:
        self.params = params
        self.seed = seed

    def generate(
        self,
        duration: Optional[float] = None,
        max_requests: Optional[int] = None,
    ) -> Trace:
        """Generate up to ``duration`` seconds or ``max_requests`` requests."""
        if duration is None and max_requests is None:
            raise ValueError("provide duration and/or max_requests")
        p = self.params
        rng = np.random.default_rng(self.seed)
        sizes = np.array([s for s, _ in p.size_dist])
        size_probs = np.array([pr for _, pr in p.size_dist])
        nblocks = p.address_space // p.block
        hot_blocks = max(1, int(nblocks * p.hot_fraction))

        requests: list[IORequest] = []
        t = 0.0
        on = True  # start in a burst, like Fig 3's plots
        prev_write_end: Optional[int] = None
        prev_read_end: Optional[int] = None
        levels = p.burst.on_levels
        level_rates = None
        level_probs = None
        if levels is not None:
            level_rates = np.array([r for r, _ in levels])
            level_probs = np.array([pr for _, pr in levels])
        while True:
            period_mean = p.burst.on_duration_mean if on else p.burst.off_duration_mean
            if on:
                if level_rates is not None:
                    rate = float(level_rates[rng.choice(len(level_rates), p=level_probs)])
                else:
                    rate = p.burst.on_iops
            else:
                rate = p.burst.off_iops
            # Exponential period lengths, truncated: real bursts and lulls
            # do not run unbounded, and untruncated tails dominate queueing.
            period_len = min(float(rng.exponential(period_mean)), 2.5 * period_mean)
            period_end = t + period_len
            while rate > 0:
                is_read = bool(rng.random() < p.read_ratio)
                nbytes = int(rng.choice(sizes, p=size_probs))
                if is_read:
                    seq_from = prev_read_end if rng.random() < p.read_seq_prob else None
                else:
                    seq_from = prev_write_end if rng.random() < p.write_seq_prob else None
                if seq_from is not None:
                    # Continuation of a split multi-block operation: arrives
                    # back-to-back with its predecessor.
                    t += float(rng.exponential(p.seq_arrival_gap))
                else:
                    t += float(rng.exponential(1.0 / rate))
                if t >= period_end:
                    break
                if duration is not None and t > duration:
                    return Trace(p.name, requests)
                if seq_from is not None and seq_from + nbytes <= p.address_space:
                    lba = seq_from
                else:
                    if rng.random() < p.hot_weight:
                        blk = int(rng.integers(0, hot_blocks))
                    else:
                        blk = int(rng.integers(0, nblocks))
                    lba = blk * p.block
                    if lba + nbytes > p.address_space:
                        lba = max(0, p.address_space - nbytes)
                        lba -= lba % p.block
                requests.append(
                    IORequest(t, READ if is_read else WRITE, lba, nbytes)
                )
                if is_read:
                    prev_read_end = lba + nbytes
                else:
                    prev_write_end = lba + nbytes
                if max_requests is not None and len(requests) >= max_requests:
                    return Trace(p.name, requests)
            t = period_end
            on = not on
            if duration is not None and t > duration:
                return Trace(p.name, requests)
