"""Trace transformations: overlay, scale, stretch, filter, relabel.

Workload studies constantly need derived traces — "the same trace at 2x
the rate", "OLTP plus a background scan", "writes only".  These
operators compose :class:`~repro.traces.model.Trace` values without
touching the generators, and each preserves the invariants the replay
layer depends on (sorted timestamps, positive sizes, block alignment
where the input had it).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.traces.model import IORequest, Trace

__all__ = [
    "overlay",
    "time_scale",
    "rate_scale",
    "shift",
    "concat",
    "reads_only",
    "writes_only",
    "clamp_sizes",
]


def overlay(traces: Sequence[Trace], name: str = "overlay") -> Trace:
    """Merge several traces onto one timeline (requests interleave by time).

    Models co-located workloads sharing one device — e.g. an OLTP
    foreground plus a backup scan.
    """
    if not traces:
        raise ValueError("overlay needs at least one trace")
    merged: list[IORequest] = []
    for t in traces:
        merged.extend(t.requests)
    return Trace(name, merged)


def time_scale(trace: Trace, factor: float) -> Trace:
    """Stretch (> 1) or compress (< 1) the timeline by ``factor``.

    Compressing time raises the arrival rate without changing the
    request population — the standard way to turn one trace into a
    higher-intensity variant.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive: {factor!r}")
    return Trace(
        trace.name,
        [IORequest(r.time * factor, r.op, r.lba, r.nbytes) for r in trace],
    )


def rate_scale(trace: Trace, factor: float) -> Trace:
    """Raise the arrival rate by ``factor`` (sugar for 1/factor time scale)."""
    if factor <= 0:
        raise ValueError(f"factor must be positive: {factor!r}")
    return time_scale(trace, 1.0 / factor)


def shift(trace: Trace, offset: float) -> Trace:
    """Delay every request by ``offset`` seconds (for staggered overlays)."""
    if offset < 0:
        raise ValueError(f"offset must be non-negative: {offset!r}")
    return Trace(
        trace.name,
        [IORequest(r.time + offset, r.op, r.lba, r.nbytes) for r in trace],
    )


def concat(traces: Iterable[Trace], gap: float = 0.0, name: str = "concat") -> Trace:
    """Play traces back to back, ``gap`` idle seconds apart."""
    if gap < 0:
        raise ValueError(f"gap must be non-negative: {gap!r}")
    out: list[IORequest] = []
    t0 = 0.0
    for trace in traces:
        for r in trace:
            out.append(IORequest(t0 + r.time, r.op, r.lba, r.nbytes))
        t0 += trace.duration + gap
    return Trace(name, out)


def reads_only(trace: Trace) -> Trace:
    """Only the read requests."""
    return trace.filter(lambda r: r.is_read)


def writes_only(trace: Trace) -> Trace:
    """Only the write requests."""
    return trace.filter(lambda r: r.is_write)


def clamp_sizes(trace: Trace, max_bytes: int) -> Trace:
    """Split requests larger than ``max_bytes`` into back-to-back pieces.

    Mimics a block layer with a maximum transfer size; pieces inherit
    the original timestamp (they arrive together).
    """
    if max_bytes <= 0:
        raise ValueError(f"max_bytes must be positive: {max_bytes!r}")
    out: list[IORequest] = []
    for r in trace:
        pos = r.lba
        remaining = r.nbytes
        while remaining > 0:
            piece = min(remaining, max_bytes)
            out.append(IORequest(r.time, r.op, pos, piece))
            pos += piece
            remaining -= piece
    return Trace(trace.name, out)
