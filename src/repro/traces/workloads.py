"""Canned workload parameter sets for the paper's four traces.

The paper's Table II characterises Fin1/Fin2 (SPC OLTP) and Usr_0/Prxy_0
(MSR Cambridge) by read/write ratio, raw IOPS and average request size.
The parameter sets below reproduce the published characteristics of
those traces:

=========  ===========  =========  ============  ===========================
trace      write ratio  raw IOPS   avg req size  character
=========  ===========  =========  ============  ===========================
Fin1       ~77 %        ~120       ~3.5 KB       write-heavy OLTP, bursty
Fin2       ~18 %        ~90        ~2.5 KB       read-heavy OLTP
Usr_0      ~60 %        ~40        ~12 KB        user home dir, large reqs,
                                                 long idle periods
Prxy_0     ~97 %        ~130       ~5 KB         firewall/proxy, write storm
=========  ===========  =========  ============  ===========================

Raw IOPS here is the *long-run average*; the ON/OFF burst models push
instantaneous rates an order of magnitude higher during bursts, per the
paper's Fig 3.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.traces.model import Trace
from repro.traces.synthetic import BurstModel, SyntheticTraceGenerator, WorkloadParams

__all__ = ["FIN1", "FIN2", "USR0", "PRXY0", "WORKLOADS", "make_workload",
           "fin1", "fin2", "usr0", "prxy0"]

_KB = 1024

# Burst models follow the "intense bursts, long idle periods" structure of
# the paper's Fig 3: instantaneous burst rates are in the thousands of IOPS
# (enough to queue on an X25-E-class device and to saturate slow codecs)
# while the long-run averages stay near Table II's reported raw IOPS.

FIN1 = WorkloadParams(
    name="Fin1",
    read_ratio=0.23,
    size_dist=((512, 0.05), (2048, 0.25), (4096, 0.55), (8192, 0.15)),
    write_seq_prob=0.35,
    read_seq_prob=0.15,
    burst=BurstModel(
        on_iops=1050.0,
        off_iops=25.0,
        on_duration_mean=0.7,
        off_duration_mean=14.0,
        on_levels=((950.0, 0.85), (1650.0, 0.15)),
    ),
    address_space=1 << 28,  # 256 MB footprint folded onto the device
    hot_fraction=0.15,
    hot_weight=0.85,
)

FIN2 = WorkloadParams(
    name="Fin2",
    read_ratio=0.82,
    size_dist=((512, 0.10), (2048, 0.45), (4096, 0.40), (8192, 0.05)),
    write_seq_prob=0.25,
    read_seq_prob=0.30,
    burst=BurstModel(
        on_iops=1120.0,
        off_iops=25.0,
        on_duration_mean=0.6,
        off_duration_mean=14.0,
        on_levels=((1000.0, 0.85), (1800.0, 0.15)),
    ),
    address_space=1 << 28,
    hot_fraction=0.2,
    hot_weight=0.8,
)

USR0 = WorkloadParams(
    name="Usr_0",
    read_ratio=0.40,
    size_dist=((4096, 0.40), (8192, 0.20), (16384, 0.20), (32768, 0.15), (65536, 0.05)),
    write_seq_prob=0.55,
    read_seq_prob=0.45,
    burst=BurstModel(
        on_iops=330.0,
        off_iops=3.0,
        on_duration_mean=0.7,
        off_duration_mean=20.0,
        on_levels=((300.0, 0.85), (520.0, 0.15)),
    ),
    address_space=1 << 29,
    hot_fraction=0.1,
    hot_weight=0.7,
)

PRXY0 = WorkloadParams(
    name="Prxy_0",
    read_ratio=0.03,
    size_dist=((512, 0.10), (4096, 0.55), (8192, 0.25), (16384, 0.10)),
    write_seq_prob=0.50,
    read_seq_prob=0.20,
    burst=BurstModel(
        on_iops=530.0,
        off_iops=30.0,
        on_duration_mean=0.8,
        off_duration_mean=12.0,
        on_levels=((500.0, 0.85), (700.0, 0.15)),
    ),
    address_space=1 << 28,
    hot_fraction=0.25,
    hot_weight=0.9,
)

WORKLOADS: Dict[str, WorkloadParams] = {
    p.name: p for p in (FIN1, FIN2, USR0, PRXY0)
}


def make_workload(
    name: str,
    duration: Optional[float] = None,
    max_requests: Optional[int] = 20_000,
    seed: int = 42,
) -> Trace:
    """Generate one of the four canned workloads by name."""
    try:
        params = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return SyntheticTraceGenerator(params, seed=seed).generate(
        duration=duration, max_requests=max_requests
    )


def _factory(workload_name: str) -> Callable[..., Trace]:
    def make(
        duration: Optional[float] = None,
        max_requests: Optional[int] = 20_000,
        seed: int = 42,
    ) -> Trace:
        return make_workload(workload_name, duration, max_requests, seed)

    make.__name__ = workload_name.lower().replace("_", "")
    make.__doc__ = f"Generate the synthetic {workload_name} trace."
    return make


fin1 = _factory("Fin1")
fin2 = _factory("Fin2")
usr0 = _factory("Usr_0")
prxy0 = _factory("Prxy_0")
