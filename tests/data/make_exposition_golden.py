#!/usr/bin/env python3
"""Regenerate exposition_golden.txt from the fixture in test_exposition.

Run from the repo root after an intentional format change:

    PYTHONPATH=src:tests python tests/data/make_exposition_golden.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from test_exposition import GOLDEN, build_fixture  # noqa: E402

from repro.telemetry import render_exposition  # noqa: E402


def main() -> None:
    metrics, sampler = build_fixture()
    text = render_exposition(metrics=metrics, sampler=sampler)
    with open(GOLDEN, "w", encoding="utf-8") as fp:
        fp.write(text)
    print(f"wrote {len(text.splitlines())} lines to {GOLDEN}")


if __name__ == "__main__":
    main()
