"""Burn-rate alerting: window math, fire/clear determinism, rendering."""

import pytest

from repro.bench.cluster import run_cluster
from repro.telemetry import (
    BurnRateEngine,
    BurnRatePolicy,
    TimeSeriesSampler,
    render_alert_timeline,
    render_dashboard,
    render_exposition,
    parse_exposition,
)


class TestPolicyValidation:
    def test_defaults_valid(self):
        BurnRatePolicy()

    @pytest.mark.parametrize("kwargs", [
        {"fast_window": 0.0},
        {"fast_window": 3.0},          # fast >= slow
        {"budget": 0.0},
        {"budget": 1.5},
        {"fire_threshold": 0.0},
        {"clear_threshold": 0.0},
        {"clear_threshold": 2.0},      # == fire_threshold
        {"min_samples": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            BurnRatePolicy(**kwargs)


class TestWindowMath:
    def test_burn_from_cumulative_counters(self):
        eng = BurnRateEngine()
        eng.observe("t", 0.0, 0, 0)
        ev = eng.observe("t", 0.25, 10, 5)
        st = eng.states["t"]
        # 5 violations / 10 completed over both windows, budget 5 %
        assert st.fast_burn == pytest.approx(10.0)
        assert st.slow_burn == pytest.approx(10.0)
        assert ev is not None and ev.kind == "fire"
        assert st.firing

    def test_min_samples_gate(self):
        eng = BurnRateEngine()
        eng.observe("t", 0.0, 0, 0)
        eng.observe("t", 0.25, 3, 3)  # 100 % violations, but only 3 done
        st = eng.states["t"]
        assert st.fast_burn == 0.0
        assert not st.firing

    def test_same_tick_observation_is_idempotent(self):
        eng = BurnRateEngine()
        eng.observe("t", 0.0, 0, 0)
        eng.observe("t", 0.25, 10, 5)
        eng.observe("t", 0.25, 10, 5)
        assert len(eng.states["t"].samples) == 2
        assert len(eng.events) == 1

    def test_fire_then_clear_with_hysteresis(self):
        eng = BurnRateEngine()
        eng.observe("t", 0.0, 0, 0)
        assert eng.observe("t", 0.25, 10, 5).kind == "fire"
        # burst over, completions keep flowing: still firing at 0.5s
        # because both windows still see the burst
        assert eng.observe("t", 0.5, 20, 5) is None
        assert eng.states["t"].firing
        # once both windows' baselines pass the burst, burn drops to 0
        ev = eng.observe("t", 3.0, 40, 5)
        assert ev is not None and ev.kind == "clear"
        assert not eng.states["t"].firing
        assert [e.kind for e in eng.events] == ["fire", "clear"]
        assert eng.firing == []

    def test_sample_pruning_keeps_slow_baseline(self):
        eng = BurnRateEngine()
        for i in range(100):
            eng.observe("t", i * 0.25, i * 10, 0)
        samples = eng.states["t"].samples
        # bounded by the slow window, not the observation count
        assert len(samples) <= int(2.5 / 0.25) + 2
        # exactly one sample at or before the slow horizon survives
        horizon = samples[-1][0] - eng.policy.slow_window
        assert samples[0][0] <= horizon
        assert all(s[0] > horizon for s in list(samples)[1:])


class TestClusterIntegration:
    @pytest.fixture(scope="class")
    def run(self):
        sampler = TimeSeriesSampler(interval=0.25)
        engine = BurnRateEngine()
        report = run_cluster(
            n_shards=3, n_tenants=6, max_requests=300,
            sampler=sampler, alerts=engine,
        )
        return report, sampler, engine

    def test_seeded_run_fires_and_clears(self, run):
        report, _sampler, engine = run
        assert report.ok, report.failures
        kinds = [e.kind for e in engine.events]
        assert "fire" in kinds and "clear" in kinds
        # the overloaded throttled tenant is the one paged on
        fired = {e.tenant for e in engine.events if e.kind == "fire"}
        assert fired, "no tenant fired"

    def test_deterministic_replay(self, run):
        _report, _sampler, engine = run
        sampler2 = TimeSeriesSampler(interval=0.25)
        engine2 = BurnRateEngine()
        run_cluster(
            n_shards=3, n_tenants=6, max_requests=300,
            sampler=sampler2, alerts=engine2,
        )
        assert [
            (e.tenant, e.kind, e.t) for e in engine.events
        ] == [
            (e.tenant, e.kind, e.t) for e in engine2.events
        ]

    def test_alert_series_and_markers_exported(self, run):
        _report, sampler, engine = run
        assert any(n.startswith("alert.firing.") for n in sampler.series)
        assert any(n.startswith("alert.fast_burn.") for n in sampler.series)
        marks = sampler.markers["alerts"].events()
        assert [
            label for _t, label in marks
        ] == [f"{e.tenant}:{e.kind}" for e in engine.events]

    def test_dashboard_alert_panel(self, run):
        _report, sampler, engine = run
        text = render_dashboard(sampler, alerts=engine)
        assert "── alerts" in text
        assert "fires" in text

    def test_exposition_round_trip(self, run):
        _report, sampler, _engine = run
        text = render_exposition(sampler=sampler)
        snapshot = parse_exposition(text)
        assert any("alert_firing" in name for name, _labels in snapshot)


class TestTimelineRender:
    def test_fired_interval_marked(self):
        eng = BurnRateEngine()
        eng.observe("t", 0.0, 0, 0)
        eng.observe("t", 0.25, 10, 5)
        eng.observe("t", 3.0, 40, 5)
        text = render_alert_timeline(eng, 0.0, 4.0, width=40)
        row = next(l for l in text.splitlines() if l.startswith("t"))
        assert "#" in row and "." in row
        assert "ok" in row and "fires 1" in row

    def test_still_firing_extends_to_edge(self):
        eng = BurnRateEngine()
        eng.observe("t", 0.0, 0, 0)
        eng.observe("t", 0.25, 10, 5)
        text = render_alert_timeline(eng, 0.0, 1.0, width=20)
        row = next(l for l in text.splitlines() if l.startswith("t"))
        assert row.rstrip().split()[1].endswith("#")
        assert "FIRING" in row

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_alert_timeline(BurnRateEngine(), 0.0, 1.0, width=0)
