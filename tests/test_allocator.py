"""Tests for the 25/50/75/100 % size-class allocator (paper §III-C)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.allocator import SizeClassAllocator


class TestClassSelection:
    @pytest.mark.parametrize(
        "payload,expected",
        [
            (0, 1024),
            (1, 1024),
            (1024, 1024),
            (1025, 2048),
            (2048, 2048),
            (2049, 3072),
            (3072, 3072),
            (3073, 4096),
            (4096, 4096),
            (9999, 4096),  # grew beyond original: stored raw
        ],
    )
    def test_boundaries(self, payload, expected):
        assert SizeClassAllocator().class_for(payload).nbytes == expected

    def test_paper_worked_example(self):
        """§III-C: 4096B block -> 1562B and later 2008B compressed forms."""
        al = SizeClassAllocator()
        assert al.class_for(1562).nbytes == 2048
        assert al.class_for(2008).nbytes == 2048

    def test_merged_run_scaling(self):
        al = SizeClassAllocator()
        cls = al.class_for(5000, original_size=16384)
        assert cls.nbytes == 8192  # 50% of 16 KB
        assert cls.fraction == 0.5

    def test_incompressible_threshold(self):
        al = SizeClassAllocator()
        assert al.incompressible_threshold == 3072
        assert al.incompressible_fraction == 0.75
        assert al.is_compressible_size(3072)
        assert not al.is_compressible_size(3073)

    def test_custom_fractions(self):
        al = SizeClassAllocator(fractions=(0.5, 1.0))
        assert al.class_for(100).nbytes == 2048
        assert al.incompressible_threshold == 2048

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            SizeClassAllocator().class_for(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeClassAllocator(fractions=(0.25, 0.5))  # no 1.0 class
        with pytest.raises(ValueError):
            SizeClassAllocator(fractions=(0.5, 0.5, 1.0))  # duplicate
        with pytest.raises(ValueError):
            SizeClassAllocator(block_size=0)


class TestAllocateFree:
    def test_allocate_tracks_physical_bytes(self):
        al = SizeClassAllocator()
        al.allocate("a", 1500)
        assert al.physical_bytes == 2048
        assert al.live_physical_bytes == 2048
        assert al.live_payload_bytes == 1500

    def test_free_recycles(self):
        al = SizeClassAllocator()
        al.allocate("a", 1500)
        al.free("a")
        al.allocate("b", 1800)  # same 2048 class: recycled, no new space
        assert al.physical_bytes == 2048
        assert al.stats.recycled == 1

    def test_reallocate_same_key_frees_old(self):
        al = SizeClassAllocator()
        al.allocate("a", 900)
        al.allocate("a", 2500)
        assert al.live_slots == 1
        assert al.lookup("a")[0].nbytes == 3072

    def test_free_missing_returns_false(self):
        assert not SizeClassAllocator().free("ghost")

    def test_internal_fragmentation_accounting(self):
        al = SizeClassAllocator()
        al.allocate("a", 1500)  # slot 2048 -> frag 548
        assert al.stats.internal_fragmentation == 548
        al.free("a")
        assert al.stats.internal_fragmentation == 0

    def test_class_histogram(self):
        al = SizeClassAllocator()
        al.allocate("a", 500)
        al.allocate("b", 1500)
        al.allocate("c", 1600)
        hist = al.class_histogram()
        assert hist[0.25] == 1
        assert hist[0.5] == 2
        assert hist[1.0] == 0

    def test_lookup(self):
        al = SizeClassAllocator()
        assert al.lookup("a") is None
        al.allocate("a", 700)
        cls, stored = al.lookup("a")
        assert cls.nbytes == 1024
        assert stored == 700


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=5000),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_alloc_free_invariants(self, ops):
        al = SizeClassAllocator()
        live = {}
        for key, payload in ops:
            if payload % 3 == 0 and key in live:
                al.free(key)
                del live[key]
            else:
                cls = al.allocate(key, payload)
                assert payload <= cls.nbytes or cls.fraction == 1.0
                live[key] = cls.nbytes
        assert al.live_slots == len(live)
        assert al.live_physical_bytes == sum(live.values())
        # Physical bytes never exceed what allocations claimed in total.
        assert al.physical_bytes >= al.live_physical_bytes

    @given(st.integers(min_value=0, max_value=8192), st.integers(min_value=512, max_value=65536))
    @settings(max_examples=100, deadline=None)
    def test_class_always_fits_or_is_full(self, payload, original):
        al = SizeClassAllocator()
        cls = al.class_for(payload, original_size=original)
        assert cls.nbytes <= original
        if payload <= original * 0.75:
            assert payload <= cls.nbytes

    @given(st.integers(min_value=0, max_value=4096))
    @settings(max_examples=100, deadline=None)
    def test_smallest_fitting_class(self, payload):
        al = SizeClassAllocator()
        cls = al.class_for(payload)
        smaller = [c for c in al.classes if c.nbytes < cls.nbytes]
        for c in smaller:
            assert payload > c.nbytes
