"""Tests for the workload and compressibility analyzers."""

import numpy as np
import pytest

from repro.compression.codec import default_registry
from repro.sdgen.analysis import (
    CompressibilityProfile,
    block_ratios,
    profile,
    savings_concentration,
)
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentMix, ContentStore
from repro.traces.analysis import (
    access_skew,
    burstiness_summary,
    detect_bursts,
    interarrival_stats,
)
from repro.traces.model import IORequest, Trace
from repro.traces.workloads import make_workload


def bursty_trace():
    reqs = []
    t = 0.0
    for burst in range(3):
        for _ in range(100):
            reqs.append(IORequest(t, "W", 0, 4096))
            t += 0.002  # 500/s
        t += 10.0  # idle gap
    return Trace("bursty", reqs)


def steady_trace(n=200, gap=0.1):
    return Trace("steady", [IORequest(i * gap, "W", i * 4096, 4096) for i in range(n)])


class TestInterarrival:
    def test_steady_low_cv(self):
        s = interarrival_stats(steady_trace())
        assert s.mean == pytest.approx(0.1)
        assert s.cv < 0.01
        assert not s.is_bursty

    def test_bursty_high_cv(self):
        s = interarrival_stats(bursty_trace())
        assert s.is_bursty
        assert s.max_gap > 100 * s.median

    def test_tiny_trace(self):
        assert interarrival_stats(Trace("t", [])).n == 0


class TestBurstDetection:
    def test_detects_three_bursts(self):
        bursts = detect_bursts(bursty_trace(), bin_width=1.0)
        assert len(bursts) == 3
        for b in bursts:
            assert b.mean_rate >= 99
            assert 0 < b.duration < 2.0

    def test_steady_trace_has_no_bursts(self):
        assert detect_bursts(steady_trace(), bin_width=1.0) == []

    def test_empty_trace(self):
        assert detect_bursts(Trace("t", [])) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_bursts(steady_trace(), threshold_factor=0)


class TestBurstinessSummary:
    def test_bursty_summary(self):
        s = burstiness_summary(bursty_trace())
        assert s.peak_to_mean > 3
        assert s.idle_fraction > 0.5
        assert s.n_bursts == 3
        assert 0 < s.burst_fraction < 0.5

    def test_workload_fin1_is_bursty(self):
        t = make_workload("Fin1", duration=120.0, max_requests=None, seed=1)
        s = burstiness_summary(t)
        assert s.peak_to_mean > 5
        assert s.idle_fraction > 0.4


class TestAccessSkew:
    def test_uniform_accesses(self):
        t = Trace("u", [IORequest(i * 0.01, "W", i * 4096, 4096) for i in range(100)])
        hot_share, gini = access_skew(t, hot_fraction=0.2)
        assert hot_share == pytest.approx(0.2, abs=0.02)
        assert gini == pytest.approx(0.0, abs=0.02)

    def test_concentrated_accesses(self):
        reqs = [IORequest(i * 0.01, "W", 0, 4096) for i in range(90)]
        reqs += [IORequest(1 + i * 0.01, "W", (i + 1) * 4096, 4096) for i in range(10)]
        hot_share, gini = access_skew(Trace("c", reqs), hot_fraction=0.2)
        assert hot_share > 0.85
        assert gini > 0.5

    def test_empty(self):
        assert access_skew(Trace("t", [])) == (0.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            access_skew(steady_trace(), hot_fraction=0.0)


class TestCompressibilityProfile:
    @pytest.fixture(scope="class")
    def store(self):
        return ContentStore(ENTERPRISE_MIX, pool_blocks=128, seed=11)

    def test_block_ratios_real(self, store):
        gzip = default_registry().get("gzip")
        r = block_ratios(store, gzip)
        assert r.shape == (128,)
        assert r.min() < 1.1       # incompressible tail present
        assert r.max() > 3.0       # highly compressible blocks present

    def test_profile_matches_paper_shape(self, store):
        """§I: ~31% incompressible, savings concentrated in half the chunks."""
        gzip = default_registry().get("gzip")
        p = profile(store, gzip)
        assert isinstance(p, CompressibilityProfile)
        assert 0.15 <= p.incompressible_fraction <= 0.45
        assert p.half_chunks_savings_share >= 0.6
        assert p.matches_paper_shape()

    def test_savings_concentration_bounds(self):
        assert savings_concentration([]) == 0.0
        assert savings_concentration([1.0, 1.0, 1.0]) == 0.0  # nothing saved
        assert savings_concentration([10.0, 1.0], chunk_fraction=0.5) == 1.0

    def test_savings_concentration_uniform(self):
        # Equal savings everywhere: half the chunks hold half the savings.
        assert savings_concentration([2.0] * 100, 0.5) == pytest.approx(0.5)

    def test_validation(self, store):
        gzip = default_registry().get("gzip")
        with pytest.raises(ValueError):
            savings_concentration([2.0], chunk_fraction=0.0)
        with pytest.raises(ValueError):
            profile(store, gzip, incompressible_threshold=0.0)
