"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench.ascii import bar_chart, grouped_bar_chart, line_sketch


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        a_line, b_line = out.splitlines()
        assert b_line.count("█") == 10
        assert a_line.count("█") == 5

    def test_title_and_values(self):
        out = bar_chart({"x": 3.14159}, title="T", fmt="{:.1f}")
        assert out.splitlines()[0] == "T"
        assert "3.1" in out

    def test_empty(self):
        assert bar_chart({}, title="T") == "T"

    def test_zero_values(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in out

    def test_labels_aligned(self):
        out = bar_chart({"short": 1.0, "muchlonger": 1.0})
        lines = out.splitlines()
        assert lines[0].index("█") == lines[1].index("█")


class TestGroupedBarChart:
    def test_groups_rendered(self):
        out = grouped_bar_chart(
            {"Fin1": {"Native": 1.0, "EDC": 2.0}, "Fin2": {"Native": 1.5, "EDC": 1.0}}
        )
        assert "Fin1:" in out and "Fin2:" in out
        assert out.count("Native") == 2

    def test_global_scale(self):
        out = grouped_bar_chart(
            {"g1": {"a": 1.0}, "g2": {"a": 4.0}}, width=8
        )
        lines = [l for l in out.splitlines() if "█" in l or "a" in l]
        # g2's bar is full width; g1's is a quarter.
        assert lines[1].count("█") == 8

    def test_empty(self):
        assert grouped_bar_chart({}, title="T") == "T"


class TestLineSketch:
    def test_plots_points(self):
        out = line_sketch([0, 1, 2, 3], [0, 1, 2, 3], width=20, height=5)
        assert out.count("*") >= 4

    def test_monotone_series_descends_visually(self):
        out = line_sketch([0, 1], [0, 10], width=10, height=4)
        rows = [l for l in out.splitlines() if l.startswith("|")]
        # The max-y point is on the top row, min-y on the bottom row.
        assert "*" in rows[0]
        assert "*" in rows[-1]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            line_sketch([1, 2], [1])

    def test_empty(self):
        assert line_sketch([], [], title="T") == "T"

    def test_constant_series(self):
        out = line_sketch([0, 1], [5, 5])
        assert "*" in out
