"""Tests for the decision-audit trail, shadow policies and run diff.

The two headline invariants:

* auditing is side-effect-free — an audited replay produces the exact
  same :class:`ExperimentResult` as an unaudited one;
* an identical shadow (default-band EDC shadowing a default-band EDC
  device) never diverges and accounts byte-exact equal stored bytes.
"""

import io
import json

import pytest

from repro.bench.diff import (
    AuditDiffError,
    AuditDump,
    diff_dumps,
    main as diff_main,
    render_diff,
)
from repro.bench.experiments import ReplayConfig, replay
from repro.bench.report import render_audit
from repro.telemetry import (
    AUDIT_SCHEMA_VERSION,
    DecisionAuditor,
    Telemetry,
    dump_audit_jsonl,
    parse_shadow_spec,
    shadow_policy,
)
from repro.core.policy import ElasticPolicy, FixedPolicy, NativePolicy
from repro.sim.engine import Simulator
from repro.traces.workloads import make_workload

CFG = ReplayConfig(capacity_mb=32, pool_blocks=32)


def _trace(max_requests=500, seed=7):
    return make_workload("Fin1", duration=None,
                         max_requests=max_requests, seed=seed)


@pytest.fixture(scope="module")
def audited_replay():
    auditor = DecisionAuditor(
        shadows=parse_shadow_spec("lzf,gzip,native,edc")
    )
    result = replay(_trace(), "EDC", CFG,
                    telemetry=Telemetry(Simulator()), auditor=auditor)
    return auditor, result


class TestShadowSpec:
    def test_parse_shadow_spec(self):
        policies = parse_shadow_spec("lzf,gzip,native,edc")
        assert isinstance(policies[0], FixedPolicy)
        assert isinstance(policies[2], NativePolicy)
        assert isinstance(policies[3], ElasticPolicy)
        assert parse_shadow_spec("") == []

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            shadow_policy("zstd")

    def test_duplicate_names_dedup(self):
        auditor = DecisionAuditor(
            shadows=[FixedPolicy("lzf"), FixedPolicy("lzf")]
        )
        names = auditor.shadow_names
        assert len(names) == 2
        assert len(set(names)) == 2


class TestInvariants:
    def test_audit_is_side_effect_free(self):
        trace = _trace(max_requests=300)
        plain = replay(trace, "EDC", CFG)
        audited = replay(
            trace, "EDC", CFG,
            auditor=DecisionAuditor(shadows=parse_shadow_spec("lzf,gzip")),
        )
        # bit-identical results with auditing on
        assert audited == plain

    def test_identical_shadow_never_diverges(self, audited_replay):
        auditor, _ = audited_replay
        assert auditor.n_decisions > 0
        edc = auditor.shadow_grand_totals()["EDC"]
        assert edc.divergences == 0
        live = auditor.totals()
        # byte-exact equal counterfactual accounting
        assert edc.stored_bytes == live.stored_bytes
        assert edc.payload_bytes == live.payload_bytes
        assert auditor.divergence_shares()["EDC"] == 0.0

    def test_native_shadow_always_diverges_when_live_compresses(
        self, audited_replay
    ):
        auditor, _ = audited_replay
        native = auditor.shadow_grand_totals()["Native"]
        compressing = sum(
            n for (_, codec), n in auditor.selections.items()
            if codec != "raw"
        )
        assert native.divergences >= compressing


class TestAggregates:
    def test_band_totals_cover_all_decisions(self, audited_replay):
        auditor, _ = audited_replay
        assert sum(bt.n for bt in auditor.band_totals.values()) == (
            auditor.n_decisions
        )
        assert sum(auditor.selections.values()) == auditor.n_decisions

    def test_reservoir_is_bounded(self):
        auditor = DecisionAuditor(reservoir_capacity=16)
        replay(_trace(max_requests=400), "EDC", CFG, auditor=auditor)
        assert auditor.n_decisions > 16
        assert len(auditor.events) == 16

    def test_reservoir_capacity_validated(self):
        with pytest.raises(ValueError):
            DecisionAuditor(reservoir_capacity=0)

    def test_single_device_binding(self, audited_replay):
        auditor, _ = audited_replay
        with pytest.raises(RuntimeError):
            auditor.bind_device(object())

    def test_regret_summary(self, audited_replay):
        auditor, _ = audited_replay
        summary = auditor.regret_summary()
        assert summary["best_space_shadow"] in auditor.shadow_names
        assert summary["best_cpu_shadow"] in auditor.shadow_names
        # an EDC clone among the shadows bounds both regrets at <= 0
        assert summary["space_regret_bytes"] <= 0 or (
            summary["best_space_shadow"] != "EDC"
        )

    def test_event_shape(self, audited_replay):
        auditor, _ = audited_replay
        ev = auditor.events[0]
        for key in ("t", "lba", "nbytes", "iops", "band", "selected",
                    "stored", "cpu_time", "shadows"):
            assert key in ev
        assert not any(k.startswith("_") for k in ev)
        for s in ev["shadows"].values():
            assert set(s) >= {"selected", "stored", "cpu_time", "diverged"}


class TestRendering:
    def test_render_audit_regret_table(self, audited_replay):
        auditor, _ = audited_replay
        text = render_audit(auditor)
        assert "per-band regret" in text
        assert "EDC vs best-static" in text
        for name in auditor.shadow_names:
            assert f"{name} MB" in text

    def test_render_audit_empty(self):
        text = render_audit(DecisionAuditor())
        assert "no write decisions" in text


class TestDumpAndDiff:
    def test_dump_valid_jsonl(self, audited_replay, tmp_path):
        auditor, _ = audited_replay
        fp = io.StringIO()
        n = dump_audit_jsonl(auditor, fp)
        lines = fp.getvalue().strip().splitlines()
        assert len(lines) == n
        kinds = set()
        for line in lines:
            obj = json.loads(line)
            kinds.add(obj["kind"])
        assert kinds >= {"meta", "band", "selection", "shadow", "event"}
        meta = json.loads(lines[0])
        assert meta["kind"] == "meta"
        assert meta["version"] == AUDIT_SCHEMA_VERSION

    def test_self_diff_passes(self, audited_replay, tmp_path):
        auditor, _ = audited_replay
        path = tmp_path / "a.jsonl"
        with open(path, "w") as fp:
            dump_audit_jsonl(auditor, fp)
        assert diff_main([str(path), str(path)]) == 0

    def test_diff_detects_shift(self, tmp_path, capsys):
        # swap the loaded band's codec so the decision mix flips
        from repro.core.policy import IntensityBand

        trace = _trace(max_requests=400)
        paths = []
        for i, bands in enumerate((
            None,
            [IntensityBand(250.0, "gzip"), IntensityBand(3000.0, "gzip"),
             IntensityBand(float("inf"), None)],
        )):
            auditor = DecisionAuditor(shadows=parse_shadow_spec("lzf"))
            replay(trace, "EDC", CFG, bands=bands, auditor=auditor,
                   telemetry=Telemetry(Simulator()))
            path = tmp_path / f"run{i}.jsonl"
            with open(path, "w") as fp:
                dump_audit_jsonl(auditor, fp)
            paths.append(str(path))
        assert diff_main(paths) == 1
        out = capsys.readouterr().out
        assert "shift" in out

    def test_diff_exit_2_on_unreadable(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert diff_main([missing, missing]) == 2

    def test_diff_exit_2_on_malformed(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "band"}\n')
        assert diff_main([str(bad), str(bad)]) == 2

    def test_dump_loads_back(self, audited_replay, tmp_path):
        auditor, _ = audited_replay
        path = tmp_path / "a.jsonl"
        with open(path, "w") as fp:
            dump_audit_jsonl(auditor, fp)
        dump = AuditDump.load(str(path))
        assert dump.meta["n_decisions"] == auditor.n_decisions
        dist = dump.selection_distribution()
        assert dist
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_diff_policy_mismatch_raises(self, audited_replay, tmp_path):
        auditor, _ = audited_replay
        path = tmp_path / "a.jsonl"
        with open(path, "w") as fp:
            dump_audit_jsonl(auditor, fp)
        a = AuditDump.load(str(path))
        b = AuditDump.load(str(path))
        b.meta = dict(b.meta, policy="Lzf")
        with pytest.raises(AuditDiffError):
            diff_dumps(a, b)

    def test_render_diff_table(self, audited_replay, tmp_path):
        auditor, _ = audited_replay
        path = tmp_path / "a.jsonl"
        with open(path, "w") as fp:
            dump_audit_jsonl(auditor, fp)
        a = AuditDump.load(str(path))
        result = diff_dumps(a, a)
        text = render_diff(a, a, result)
        assert "audit diff" in text
        assert "no significant policy shift" in text
