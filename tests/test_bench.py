"""Tests for the experiment harness (schemes, replay, reporting)."""

import dataclasses

import pytest

from repro.bench.experiments import ExperimentResult, ReplayConfig, replay, replay_all_schemes
from repro.bench.report import render_normalized, render_series, render_table
from repro.bench.schemes import SCHEMES, build_device, build_policy, scheme_config
from repro.core.config import EDCConfig
from repro.core.policy import ElasticPolicy, FixedPolicy, NativePolicy
from repro.traces.model import IORequest, Trace
from repro.traces.workloads import make_workload


def small_cfg(**kw):
    base = ReplayConfig(capacity_mb=32, pool_blocks=32, **kw)
    return base


@pytest.fixture(scope="module")
def small_trace():
    return make_workload("Fin1", duration=None, max_requests=800, seed=7)


class TestSchemes:
    def test_roster(self):
        assert SCHEMES == ("Native", "Lzf", "Gzip", "Bzip2", "EDC")

    def test_policies(self):
        assert isinstance(build_policy("Native"), NativePolicy)
        assert isinstance(build_policy("EDC"), ElasticPolicy)
        lzf = build_policy("Lzf")
        assert isinstance(lzf, FixedPolicy) and lzf.codec_name == "lzf"
        assert build_policy("Gzip").codec_name == "gzip"
        assert build_policy("Bzip2").codec_name == "bzip2"

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            build_policy("Zstd")

    def test_only_edc_gets_sd_and_gate(self):
        for scheme in SCHEMES:
            cfg = scheme_config(scheme)
            if scheme == "EDC":
                assert cfg.sd_enabled and cfg.compressibility_gate
            else:
                assert not cfg.sd_enabled and not cfg.compressibility_gate

    def test_scheme_config_respects_base_disable(self):
        base = EDCConfig(sd_enabled=False)
        assert not scheme_config("EDC", base).sd_enabled


class TestReplayConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayConfig(backend="raid0")
        with pytest.raises(ValueError):
            ReplayConfig(fold_fraction=0.0)
        with pytest.raises(ValueError):
            ReplayConfig(backend="rais5", n_devices=2)

    def test_fold_bytes_block_aligned(self):
        cfg = small_cfg()
        assert cfg.fold_bytes(4096) % 4096 == 0

    def test_rais5_fold_uses_data_devices(self):
        ssd = small_cfg().fold_bytes(4096)
        arr = small_cfg(backend="rais5").fold_bytes(4096)
        assert arr == pytest.approx(ssd * 4, rel=0.01)


class TestReplay:
    def test_replay_produces_result(self, small_trace):
        r = replay(small_trace, "Lzf", small_cfg())
        assert isinstance(r, ExperimentResult)
        assert r.scheme == "Lzf"
        assert r.n_requests == len(small_trace)
        assert r.compression_ratio > 1.0
        assert r.mean_response > 0
        assert r.composite == pytest.approx(r.compression_ratio / r.mean_response)

    def test_native_ratio_is_one(self, small_trace):
        r = replay(small_trace, "Native", small_cfg())
        assert r.compression_ratio == pytest.approx(1.0)
        assert r.space_saving == pytest.approx(0.0)

    def test_replay_deterministic(self, small_trace):
        a = replay(small_trace, "EDC", small_cfg())
        b = replay(small_trace, "EDC", small_cfg())
        assert a.mean_response == b.mean_response
        assert a.compression_ratio == b.compression_ratio

    def test_rais5_backend(self, small_trace):
        r = replay(small_trace.head(300), "EDC", small_cfg(backend="rais5"))
        assert r.mean_response > 0

    def test_all_schemes(self, small_trace):
        res = replay_all_schemes(
            small_trace.head(300), small_cfg(), schemes=("Native", "Lzf")
        )
        assert set(res) == {"Native", "Lzf"}

    def test_custom_bands(self, small_trace):
        from repro.core.policy import IntensityBand

        bands = (IntensityBand(float("inf"), "lzf"),)
        r = replay(small_trace.head(300), "EDC", small_cfg(), bands=bands)
        assert set(r.codec_shares) <= {"lzf", "none"}


class TestReport:
    def test_render_table(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.500" in out

    def test_render_series(self):
        out = render_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [1.0, 2.0]})
        assert "s1" in out and "s2" in out
        assert "0.200" in out

    def test_render_normalized(self):
        out = render_normalized({"Native": 2.0, "EDC": 1.0}, baseline="Native")
        assert "0.500" in out

    def test_render_normalized_missing_baseline(self):
        with pytest.raises(KeyError):
            render_normalized({"EDC": 1.0}, baseline="Native")
