"""Tests for the ``python -m repro.bench`` CLI runner."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_fig1_and_tables(self, capsys):
        assert main(["fig1", "table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out
        assert "Table I" in out
        assert "Table II" in out
        assert "Fin1" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert "peak" in out

    def test_unknown_exhibit_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_duration_flag_parsed(self, capsys):
        assert main(["table1", "--duration", "5"]) == 0

    def test_fig12_short(self, capsys):
        assert main(["fig12", "--duration", "8"]) == 0
        out = capsys.readouterr().out
        assert "Fig 12" in out
        assert "gzip share" in out

    def test_metrics_flag_renders_dashboard(self, capsys, tmp_path):
        series = tmp_path / "ts.jsonl"
        prom = tmp_path / "m.prom"
        assert main(["breakdown", "--metrics", "--duration", "4",
                     "--series-dump", str(series),
                     "--prom-dump", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "time-series dashboard" in out
        assert "policy.band" in out
        assert "markers[band_switch]" in out
        assert series.read_text().strip()
        assert prom.read_text().startswith("# HELP")

    def test_telemetry_and_metrics_compose(self, capsys):
        # one shared replay produces both reports
        assert main(["breakdown", "--telemetry", "--metrics",
                     "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "telemetry+metrics" in out
        assert "Per-layer latency breakdown" in out
        assert "time-series dashboard" in out
