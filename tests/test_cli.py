"""Tests for the ``python -m repro.bench`` CLI runner."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_fig1_and_tables(self, capsys):
        assert main(["fig1", "table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out
        assert "Table I" in out
        assert "Table II" in out
        assert "Fin1" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert "peak" in out

    def test_unknown_exhibit_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_duration_flag_parsed(self, capsys):
        assert main(["table1", "--duration", "5"]) == 0

    def test_fig12_short(self, capsys):
        assert main(["fig12", "--duration", "8"]) == 0
        out = capsys.readouterr().out
        assert "Fig 12" in out
        assert "gzip share" in out

    def test_metrics_flag_renders_dashboard(self, capsys, tmp_path):
        series = tmp_path / "ts.jsonl"
        prom = tmp_path / "m.prom"
        assert main(["breakdown", "--metrics", "--duration", "4",
                     "--series-dump", str(series),
                     "--prom-dump", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "time-series dashboard" in out
        assert "policy.band" in out
        assert "markers[band_switch]" in out
        assert series.read_text().strip()
        assert prom.read_text().startswith("# HELP")

    def test_telemetry_and_metrics_compose(self, capsys):
        # one shared replay produces both reports
        assert main(["breakdown", "--telemetry", "--metrics",
                     "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "telemetry+metrics" in out
        assert "Per-layer latency breakdown" in out
        assert "time-series dashboard" in out

    def test_audit_flag_prints_regret_table(self, capsys, tmp_path):
        dump = tmp_path / "audit.jsonl"
        assert main(["breakdown", "--audit", "--shadow", "lzf,gzip",
                     "--audit-dump", str(dump), "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "decision audit:" in out
        assert "per-band regret" in out
        assert "Lzf MB" in out and "Gzip MB" in out
        assert "EDC vs best-static" in out
        # the dump is valid JSONL the diff tool accepts (self-diff = 0)
        import json

        from repro.bench.diff import main as diff_main

        lines = dump.read_text().strip().splitlines()
        assert lines and all(json.loads(l) for l in lines)
        assert diff_main([str(dump), str(dump)]) == 0

    def test_audit_composes_with_telemetry_and_metrics(self, capsys):
        # one shared replay produces all three reports
        assert main(["breakdown", "--audit", "--telemetry", "--metrics",
                     "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "telemetry+metrics+audit" in out
        assert "Per-layer latency breakdown" in out
        assert "time-series dashboard" in out
        assert "per-band regret" in out
        # the audit vocabulary shows up in the sampled series too
        assert "audit.decisions" in out
