"""Tests for per-shard capacity tracking and imbalance detection."""

import pytest

from repro.cluster import ShardCapacity, TenantSpec
from repro.cluster.capacity import CapacityBalancer

from tests.test_cluster_routing import build_fleet, run_all


def fake_snap(**phys):
    return {
        name: ShardCapacity(
            name=name, logical_bytes=2 * p, physical_bytes=p,
            ratio=2.0, queue_depth=0, ranges=1,
        )
        for name, p in phys.items()
    }


class TestImbalanceMath:
    def test_empty_fleet_is_balanced(self):
        fleet = build_fleet(n_shards=3)
        assert fleet.balancer.imbalance() == 0.0
        assert not fleet.balancer.is_imbalanced()
        assert fleet.balancer.suggest() is None

    def test_spread_over_mean(self):
        fleet = build_fleet(n_shards=2)
        snap = fake_snap(shard0=300, shard1=100)
        assert fleet.balancer.imbalance(snap) == pytest.approx(1.0)

    def test_suggest_orders_full_to_empty(self):
        fleet = build_fleet(n_shards=2)
        b = CapacityBalancer(fleet.cluster, imbalance_threshold=0.25)
        assert b.is_imbalanced(fake_snap(shard0=300, shard1=100))
        # suggest() reads live devices, so drive real skew instead
        c = fleet.cluster
        heavy = c.owner_of(0)
        start_blk = 0  # range 0 is tenant t0's first range
        for i in range(8):
            c.write("t0", (start_blk + i) * 4096, 4096)
        run_all(fleet)
        pair = fleet.balancer.suggest()
        assert pair is not None
        src, dst = pair
        assert src == heavy
        assert dst != heavy

    def test_threshold_validation(self):
        fleet = build_fleet()
        with pytest.raises(ValueError):
            CapacityBalancer(fleet.cluster, imbalance_threshold=0.0)


class TestSnapshots:
    def test_snapshot_tracks_occupancy_and_ratio(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        for i in range(6):
            c.write("t0", i * 4096, 4096)
        run_all(fleet)
        snap = fleet.balancer.snapshot()
        total_logical = sum(s.logical_bytes for s in snap.values())
        total_physical = sum(s.physical_bytes for s in snap.values())
        assert total_logical == 6 * 4096
        assert 0 < total_physical <= total_logical
        for s in snap.values():
            if s.physical_bytes:
                assert s.ratio == pytest.approx(
                    s.logical_bytes / s.physical_bytes
                )
        assert sum(s.ranges for s in snap.values()) == (
            fleet.balancer.total_ranges()
        )

    def test_queue_depth_live(self):
        fleet = build_fleet()
        c = fleet.cluster
        c.write("t0", 0, 4096)
        snap = fleet.balancer.snapshot()  # before the event loop runs
        assert sum(s.queue_depth for s in snap.values()) == 1
        run_all(fleet)
        snap = fleet.balancer.snapshot()
        assert sum(s.queue_depth for s in snap.values()) == 0


class TestPickRange:
    def test_picks_heaviest_owned_range(self):
        fleet = build_fleet(n_shards=2, tenants=[TenantSpec("t0")])
        c = fleet.cluster
        owner0 = c.owner_of(0)
        # 3 blocks in range 0, 1 block in range 1 (if same owner)
        for i in range(3):
            c.write("t0", i * 4096, 4096)
        run_all(fleet)
        picked = fleet.balancer.pick_range(owner0)
        assert picked == 0
        assert fleet.balancer.range_weight(0) == 3

    def test_exclude_and_empty(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        owner0 = c.owner_of(0)
        c.write("t0", 0, 4096)
        run_all(fleet)
        assert fleet.balancer.pick_range(owner0, exclude=(0,)) is None
        other = next(n for n in c.shards if n != owner0)
        if not fleet.balancer.ranges_of(other):
            assert fleet.balancer.pick_range(other) is None
