"""Fleet-level acceptance tests: degenerate-fleet bit-identity and the
4-shard / 8-tenant live-migration exhibit."""

import io
import json

import numpy as np

from repro.bench.cluster import run_cluster, tenant_roster
from repro.bench.experiments import ReplayConfig
from repro.bench.schemes import build_device
from repro.cluster import (
    ClusterReplayConfig,
    ClusterReplayer,
    TenantSpec,
    build_cluster,
)
from repro.core.replay import TraceReplayer
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.generator import ContentStore
from repro.sim.engine import Simulator
from repro.telemetry.timeseries import (
    TimeSeriesSampler,
    bind_cluster_metrics,
    dump_timeseries_jsonl,
)
from repro.traces.workloads import make_workload


class TestDegenerateFleetBitIdentity:
    def test_one_shard_one_tenant_matches_single_device_replay(self):
        trace = make_workload("Fin1", max_requests=400)
        rcfg = ReplayConfig(capacity_mb=32)

        # reference: the existing single-device replay of the folded trace
        sim = Simulator()
        ssd = SimulatedSSD(
            sim, name="shard0", geometry=rcfg.geometry(), timing=rcfg.timing
        )
        content = ContentStore(
            rcfg.content_mix, block_size=4096,
            pool_blocks=rcfg.pool_blocks, seed=rcfg.content_seed,
        )
        ref = build_device(sim, "EDC", ssd, content, config=rcfg.device_config)
        folded = trace.scaled_addresses(rcfg.fold_bytes(4096), 4096)
        TraceReplayer(sim, ref).replay(folded)

        # same trace through a 1-shard / 1-unthrottled-tenant cluster
        fleet = build_cluster(
            [TenantSpec("only")],
            ClusterReplayConfig(n_shards=1, capacity_mb=32),
        )
        replayer = ClusterReplayer(fleet)
        replayer.schedule("only", trace)
        outcome = replayer.run()
        dev = fleet.devices["shard0"]

        # decision stream: mapping + allocator digests are bit-identical
        assert dev.mapping.state_digest() == ref.mapping.state_digest()
        assert dev.allocator.state_digest() == ref.allocator.state_digest()
        # simulated-time metrics: every latency sample, both directions
        assert np.array_equal(
            dev.write_latency.samples(), ref.write_latency.samples()
        )
        assert np.array_equal(
            dev.read_latency.samples(), ref.read_latency.samples()
        )
        assert dev.stats.compression_ratio == ref.stats.compression_ratio
        assert outcome.horizon == sim.now
        assert outcome.lost_writes == []
        # the cluster tier added no queueing: everything admitted directly
        t = outcome.tenants["only"]
        assert t.queued == 0 and t.completed == len(trace)


class TestFleetExhibit:
    def test_four_shards_eight_tenants_with_live_migration(self):
        report = run_cluster(
            n_shards=4, n_tenants=8, max_requests=150, capacity_mb=32
        )
        assert report.ok, report.failures
        out = report.outcome
        # a migration completed during foreground load, nothing was lost
        assert out.migration.started >= 1
        assert out.migration.completed == out.migration.started
        assert out.lost_writes == []
        assert out.migration_bytes > 0
        # per-tenant SLO stats are reported for every SLO'd tenant
        assert len(out.tenants) == 8
        for spec in tenant_roster(8):
            t = out.tenants[spec.name]
            assert t.completed == t.submitted == 150
            assert (t.slo is None) == (spec.slo is None)
        # migration traffic is charged into fleet WA/energy accounting
        assert out.fleet_wa >= 1.0
        assert out.energy.total_joules > 0
        assert out.energy.device_active_joules > 0

    def test_report_renders(self):
        report = run_cluster(
            n_shards=2, n_tenants=2, max_requests=60, capacity_mb=32
        )
        text = report.render()
        assert "tenant0" in text and "shard0" in text
        assert "migrations:" in text
        assert ("OK" in text) == report.ok

    def test_cluster_metrics_family_sampled(self):
        specs = [TenantSpec("a", rate_iops=300.0, slo=0.01), TenantSpec("b")]
        fleet = build_cluster(
            specs, ClusterReplayConfig(n_shards=2, capacity_mb=32)
        )
        sampler = TimeSeriesSampler(interval=0.05)
        bind_cluster_metrics(sampler, fleet)
        sampler.start()
        replayer = ClusterReplayer(fleet)
        replayer.schedule("a", make_workload("Fin1", max_requests=80))
        replayer.schedule("b", make_workload("Fin2", max_requests=80, seed=7))
        replayer.run()
        sampler.sample_now()
        names = sampler.names()
        for expected in (
            "cluster.backlog",
            "cluster.imbalance",
            "cluster.migrations_active",
            "cluster.migration_bytes",
            "cluster.shard_depth.shard0",
            "cluster.shard_depth.shard1",
            "cluster.tenant_backlog.a",
            "cluster.tenant_slo_violations.a",
        ):
            assert expected in names, (expected, names)
        # label-keyed families carry Prometheus-style labels
        assert sampler.series["cluster.shard_depth.shard0"].labels == {
            "shard": "shard0"
        }
        fp = io.StringIO()
        n = dump_timeseries_jsonl(sampler, fp)
        assert n >= len(names)
        assert all(json.loads(line) for line in fp.getvalue().splitlines())


def test_migration_bytes_visible_in_outcome():
    report = run_cluster(
        n_shards=2, n_tenants=2, max_requests=80, capacity_mb=32
    )
    assert report.ok, report.failures
    assert report.outcome.migration_bytes > 0
