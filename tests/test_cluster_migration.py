"""Tests for live shard migration: dual writes, cutover, invariants."""

import pytest

from repro.cluster import TenantSpec
from repro.cluster.migration import MigrationError

from tests.test_cluster_routing import build_fleet, run_all

BS = 4096


def populate(fleet, blocks, tenant="t0"):
    for blk in blocks:
        fleet.cluster.write(tenant, blk * BS, BS)
    run_all(fleet)


class TestQuietMigration:
    def test_range_moves_and_source_drains(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        populate(fleet, range(8))  # range 0 (64 blocks/range)
        src = c.owner_of(0)
        dst = next(n for n in c.shards if n != src)
        done = []
        fleet.orchestrator.migrate(0, dst, on_done=done.append)
        run_all(fleet)
        m = done[0]
        assert m.done and m.src == src and m.dst == dst
        assert m.copied_blocks == 8
        assert c.overrides[0] == dst
        assert 0 not in c.dual_writes
        assert c.owner_of(0) == dst
        # source range fully reclaimed, destination serves the data
        src_dev, dst_dev = c.shards[src], c.shards[dst]
        for blk in range(8):
            assert src_dev.mapping.lookup(blk * BS) is None
            assert dst_dev.mapping.lookup(blk * BS) is not None
        assert c.check_no_lost_writes() == []
        assert fleet.orchestrator.stats.discarded_source_blocks == 8

    def test_reads_after_cutover_served_by_destination(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        populate(fleet, range(4))
        dst = next(n for n in c.shards if n != c.owner_of(0))
        fleet.orchestrator.migrate(0, dst)
        run_all(fleet)
        reads_before = c.shards[dst].distributer.stats.issued_reads
        done = []
        c.read("t0", 0, 4 * BS, on_complete=lambda: done.append(True))
        run_all(fleet)
        assert done == [True]
        assert c.shards[dst].distributer.stats.issued_reads > reads_before

    def test_migration_charged_into_device_accounting(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        populate(fleet, range(8))
        src = c.owner_of(0)
        dst = next(n for n in c.shards if n != src)
        host_before = fleet.backends[dst].ftl.stats.host_bytes
        busy_before = fleet.backends[dst].queue.stats.busy_time
        fleet.orchestrator.migrate(0, dst)
        run_all(fleet)
        # copy writes land in the destination FTL's host bytes (WA) and
        # occupy its queue (energy) exactly like GC-style traffic
        assert fleet.backends[dst].ftl.stats.host_bytes > host_before
        assert fleet.backends[dst].queue.stats.busy_time > busy_before
        assert fleet.orchestrator.migration_bytes() == 8 * BS


class TestLiveMigration:
    def test_foreground_writes_during_window_not_lost(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        populate(fleet, range(32))
        src = c.owner_of(0)
        dst = next(n for n in c.shards if n != src)
        done = []
        # keep writing into the migrating range while the copy runs
        def kick():
            fleet.orchestrator.migrate(0, dst, on_done=done.append)
            for i in range(16):
                c.sim.schedule_at(
                    c.sim.now + i * 1e-4,
                    lambda blk=i: c.write("t0", blk * BS, BS),
                )
        c.sim.schedule_at(c.sim.now, kick)
        run_all(fleet)
        m = done[0]
        assert m.done
        assert c.stats.dual_writes > 0  # window saw foreground traffic
        assert m.skipped_dirty + m.copied_blocks <= 32
        assert c.check_no_lost_writes() == []
        # every overwritten block must resolve on the destination
        for blk in range(16):
            assert c.shards[dst].mapping.lookup(blk * BS) is not None

    def test_dirty_blocks_skipped_not_resurrected(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        populate(fleet, range(4))
        src = c.owner_of(0)
        dst = next(n for n in c.shards if n != src)
        done = []
        def kick():
            fleet.orchestrator.migrate(0, dst, on_done=done.append)
            # trim block 2 inside the dual-write window
            c.trim("t0", 2 * BS, BS)
        c.sim.schedule_at(c.sim.now, kick)
        run_all(fleet)
        m = done[0]
        assert m.done
        assert 2 in m.dirty
        # the trimmed block stays trimmed on the destination
        assert c.shards[dst].mapping.lookup(2 * BS) is None
        assert c.check_no_lost_writes() == []

    def test_concurrent_migrations_of_distinct_ranges(self):
        fleet = build_fleet(n_shards=2, tenants=[TenantSpec("t0")])
        c = fleet.cluster
        populate(fleet, list(range(4)) + list(range(64, 68)))  # ranges 0+1
        dst0 = next(n for n in c.shards if n != c.owner_of(0))
        dst1 = next(n for n in c.shards if n != c.owner_of(1))
        done = []
        fleet.orchestrator.migrate(0, dst0, on_done=done.append)
        fleet.orchestrator.migrate(1, dst1, on_done=done.append)
        run_all(fleet)
        assert len(done) == 2 and all(m.done for m in done)
        assert c.check_no_lost_writes() == []


class TestValidation:
    def test_rejects_busy_range_and_bad_destinations(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        populate(fleet, range(2))
        src = c.owner_of(0)
        dst = next(n for n in c.shards if n != src)
        fleet.orchestrator.migrate(0, dst)
        with pytest.raises(MigrationError):
            fleet.orchestrator.migrate(0, dst)  # already migrating
        with pytest.raises(MigrationError):
            fleet.orchestrator.migrate(1, c.owner_of(1))  # src == dst
        with pytest.raises(MigrationError):
            fleet.orchestrator.migrate(1, "nope")
        run_all(fleet)

    def test_single_shard_has_no_destination(self):
        fleet = build_fleet(n_shards=1)
        populate(fleet, range(2))
        with pytest.raises(MigrationError):
            fleet.orchestrator.migrate(0)

    def test_auto_destination_picks_emptiest(self):
        fleet = build_fleet(n_shards=3)
        c = fleet.cluster
        populate(fleet, range(4))
        src = c.owner_of(0)
        done = []
        fleet.orchestrator.migrate(0, on_done=done.append)
        run_all(fleet)
        assert done[0].done
        assert done[0].dst != src
