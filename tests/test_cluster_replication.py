"""Tests for fleet fault tolerance: replication, health, chaos recovery."""

import dataclasses

import pytest

from repro.cluster import TenantSpec, quorum_need
from repro.cluster.replication import ReplicationConfig
from repro.cluster.health import HealthMonitor
from repro.cluster.routing import HashRing
from repro.faults.plan import DeviceFailure, FaultPlan
from repro.sim.engine import Simulator

from tests.test_cluster_routing import build_fleet, run_all

BS = 4096


def rep_fleet(n_shards=2, **kw):
    kw.setdefault("replication_factor", 2)
    return build_fleet(n_shards=n_shards, **kw)


def populate(fleet, blocks, tenant="t0"):
    for blk in blocks:
        fleet.cluster.write(tenant, blk * BS, BS)
    run_all(fleet)


# ----------------------------------------------------------------------
# quorum arithmetic & config validation
# ----------------------------------------------------------------------
class TestQuorumNeed:
    def test_values(self):
        assert quorum_need("one", 3) == 1
        assert quorum_need("majority", 1) == 1
        assert quorum_need("majority", 2) == 2
        assert quorum_need("majority", 3) == 2
        assert quorum_need("majority", 5) == 3
        assert quorum_need("all", 4) == 4

    def test_ordering_property(self):
        for factor in range(1, 8):
            one = quorum_need("one", factor)
            maj = quorum_need("majority", factor)
            all_ = quorum_need("all", factor)
            assert 1 == one <= maj <= all_ == factor
            # a majority quorum always intersects any other majority
            assert 2 * maj > factor

    def test_invalid(self):
        with pytest.raises(ValueError):
            quorum_need("some", 3)
        with pytest.raises(ValueError):
            quorum_need("all", 0)


class TestReplicationConfig:
    def test_defaults_valid(self):
        ReplicationConfig()

    @pytest.mark.parametrize("kw", [
        {"factor": 0},
        {"quorum": "plurality"},
        {"max_retries": -1},
        {"retry_backoff_s": 0.0},
        {"deadline_s": 0.0},
        {"hedge_min_samples": 0},
        {"rebuild_max_passes": 0},
    ])
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            ReplicationConfig(**kw)


# ----------------------------------------------------------------------
# health monitor state machine
# ----------------------------------------------------------------------
class _FakeBackend:
    failed = False


class _FakeDev:
    def __init__(self):
        self.backend = _FakeBackend()


class TestHealthMonitor:
    def _build(self, sim, dead=None, **kw):
        dev = _FakeDev()
        kw.setdefault("interval", 1e-3)
        kw.setdefault("suspect_after", 1)
        kw.setdefault("dead_after", 3)
        mon = HealthMonitor(
            sim, {"s0": dev},
            on_dead=(dead.append if dead is not None else None), **kw,
        )
        mon.start()
        return mon, dev

    def test_alive_suspect_dead_progression(self):
        sim = Simulator()
        dead = []
        mon, dev = self._build(sim, dead)
        sim.schedule_at(2.5e-3, lambda: setattr(dev.backend, "failed", True))
        sim.schedule_at(10e-3, lambda: None)  # keep the sim alive
        sim.run()
        h = mon.health["s0"]
        assert h.state == "dead"
        assert dead == ["s0"]
        # suspected on the first missed probe, dead on the third
        assert h.suspected_at == pytest.approx(3e-3)
        assert h.declared_dead_at == pytest.approx(5e-3)
        assert mon.dead_shards() == ["s0"] and mon.alive_count() == 0

    def test_successful_probe_clears_suspicion(self):
        sim = Simulator()
        dead = []
        mon, dev = self._build(sim, dead)
        sim.schedule_at(2.5e-3, lambda: setattr(dev.backend, "failed", True))
        sim.schedule_at(3.5e-3, lambda: setattr(dev.backend, "failed", False))
        sim.schedule_at(10e-3, lambda: None)
        sim.run()
        h = mon.health["s0"]
        assert h.state == "alive" and h.misses == 0
        assert h.suspected_at is None
        assert dead == []

    def test_death_reported_once_and_probing_stops(self):
        sim = Simulator()
        dead = []
        mon, dev = self._build(sim, dead)
        dev.backend.failed = True
        sim.schedule_at(20e-3, lambda: None)
        sim.run()
        assert dead == ["s0"]
        probes_at_death = mon.health["s0"].probes
        assert probes_at_death == 3  # no probes counted after death

    def test_start_idempotent(self):
        sim = Simulator()
        mon, _ = self._build(sim)
        mon.start()  # second start must not double the probe cadence
        sim.schedule_at(5.5e-3, lambda: None)
        sim.run()
        assert mon.health["s0"].probes == 5

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            HealthMonitor(sim, {})
        with pytest.raises(ValueError):
            HealthMonitor(sim, {"s0": _FakeDev()}, interval=0.0)
        with pytest.raises(ValueError):
            HealthMonitor(
                sim, {"s0": _FakeDev()}, suspect_after=3, dead_after=2
            )


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
class TestPlacement:
    def test_successor_walk_distinct_and_stable(self):
        ring = HashRing([f"s{i}" for i in range(4)], vnodes=32, seed=3)
        for key in range(16):
            walk = ring.successors(key, 4)
            assert len(walk) == len(set(walk)) == 4
            assert walk[0] == ring.shard_for(key)
        # removing a shard deletes only its own slots: the surviving
        # order is the old walk with the dead name struck out
        before = {k: ring.successors(k, 4) for k in range(16)}
        ring.remove_shard("s2")
        for k, walk in before.items():
            assert ring.successors(k, 3) == [n for n in walk if n != "s2"]

    def test_desired_replicas_primary_first(self):
        fleet = rep_fleet(n_shards=3)
        c, mgr = fleet.cluster, fleet.replication
        for ridx in range(4):
            reps = mgr.desired_replicas(ridx)
            assert len(reps) == len(set(reps)) == 2
            assert reps[0] == c.owner_of(ridx)
            assert reps == c.ring.successors(ridx, 2)

    def test_factor_clamped_to_ring(self):
        fleet = build_fleet(n_shards=2, replication_factor=3)
        assert all(
            len(fleet.replication.desired_replicas(r)) == 2 for r in range(4)
        )

    def test_single_copy_manager_matches_ring(self):
        # rf=1 + a fault plan still attaches the manager; placement must
        # degenerate to plain ring ownership
        fleet = build_fleet(
            n_shards=2, replication_factor=1, fault_plan=FaultPlan.empty()
        )
        mgr = fleet.replication
        assert mgr is not None and mgr.config.factor == 1
        for ridx in range(4):
            assert mgr.targets(ridx) == [fleet.cluster.ring.shard_for(ridx)]


# ----------------------------------------------------------------------
# quorum writes & replica byte-exactness
# ----------------------------------------------------------------------
class TestQuorumWrites:
    def test_writes_land_on_every_replica_byte_exact(self):
        fleet = rep_fleet(n_shards=2)
        c, mgr = fleet.cluster, fleet.replication
        populate(fleet, range(8))
        for blk in range(8):
            for name in mgr.targets(c.range_of(blk * BS)):
                dev = c.shards[name]
                assert dev.mapping.lookup(blk * BS) is not None
                assert dev._versions[blk] == mgr.versions[blk]
        assert mgr.stats.replica_writes == 8
        assert mgr.stats.replica_bytes == 8 * BS
        d = mgr.audit_durability()
        assert d.verdict == "RECOVERED"
        assert d.checked_blocks == 8 and not d.lost and not d.corrupt

    def test_overwrites_keep_version_oracle_in_sync(self):
        fleet = rep_fleet(n_shards=2)
        c, mgr = fleet.cluster, fleet.replication
        for _ in range(3):
            populate(fleet, [5])
        assert mgr.versions[5] == 3
        for name in mgr.targets(c.range_of(5 * BS)):
            assert c.shards[name]._versions[5] == 3
        assert mgr.audit_durability().verdict == "RECOVERED"

    def test_sloppy_quorum_acks_on_survivor_after_failure(self):
        fleet = rep_fleet(n_shards=2, quorum="all")
        c, mgr = fleet.cluster, fleet.replication
        populate(fleet, range(4))
        victim = c.owner_of(0)
        survivor = next(n for n in c.shards if n != victim)
        fleet.backends[victim].fail_now()
        populate(fleet, [0, 1])
        # quorum shrank to the live replica set; the writes still acked
        assert victim in mgr.down
        assert mgr.stats.quorum_failures >= 1
        assert mgr.stats.retries >= 1
        t = c.scheduler.state("t0").stats
        assert t.completed == t.submitted and t.unrecovered == 0
        assert c.shards[survivor].mapping.lookup(0) is not None
        d = mgr.audit_durability()
        # nothing acked was lost, but the fleet is short one replica
        assert not d.lost and not d.corrupt
        assert d.verdict == "DEGRADED" and d.under_replicated

    def test_no_ack_when_every_replica_is_gone(self):
        fleet = rep_fleet(n_shards=2)
        c = fleet.cluster
        populate(fleet, [0])
        acked_before = set(c._acked_blocks)
        for ssd in fleet.backends.values():
            ssd.fail_now()
        populate(fleet, [1, 2])
        t = c.scheduler.state("t0").stats
        # the parts were surfaced as unrecovered, never falsely acked
        assert t.unrecovered == 2
        assert t.completed == t.submitted
        assert set(c._acked_blocks) == acked_before
        assert fleet.replication.stats.unrecovered_parts == 2


# ----------------------------------------------------------------------
# read failover & hedging
# ----------------------------------------------------------------------
class TestReads:
    def test_read_fails_over_to_secondary(self):
        fleet = rep_fleet(n_shards=2)
        c, mgr = fleet.cluster, fleet.replication
        populate(fleet, range(4))
        fleet.backends[c.owner_of(0)].fail_now()
        done = []
        c.read("t0", 0, 2 * BS, on_complete=lambda: done.append(True))
        run_all(fleet)
        assert done == [True]
        assert mgr.stats.failovers >= 1
        assert c.scheduler.state("t0").stats.unrecovered == 0

    def test_hedged_read_beats_congested_primary(self):
        from repro.traces.model import IORequest, WRITE

        fleet = rep_fleet(n_shards=2)
        c, mgr = fleet.cluster, fleet.replication
        mgr.config = dataclasses.replace(
            mgr.config, hedge_reads=True, hedge_min_samples=1
        )
        populate(fleet, range(4))
        for _ in range(3):  # prime the tenant's latency distribution
            c.read("t0", 0, BS)
        run_all(fleet)
        # bury the primary under direct device writes, then read: the
        # hedge timer fires at the tenant p95 and the idle secondary wins
        primary = c.owner_of(0)
        for i in range(50):
            c.shards[primary].submit(
                IORequest(fleet.sim.now, WRITE, i * BS, BS)
            )
        done = []
        c.read("t0", 0, BS, on_complete=lambda: done.append(True))
        run_all(fleet)
        assert done == [True]
        assert mgr.stats.hedged_reads >= 1
        assert mgr.stats.hedge_wins >= 1


# ----------------------------------------------------------------------
# retry policy: backoff, deadline, budget
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def _manager(self, **kw):
        fleet = rep_fleet(n_shards=2)
        mgr = fleet.replication
        if kw:
            mgr.config = dataclasses.replace(mgr.config, **kw)
        return fleet, mgr, fleet.cluster.scheduler.state("t0")

    def test_backoff_doubles_and_caps(self):
        _, mgr, st = self._manager(
            retry_budget_iops=None, retry_backoff_s=1e-3,
            retry_backoff_cap_s=3e-3, max_retries=10,
        )
        now = mgr.sim.now
        delays = [mgr._allow_retry(st, now, a) for a in range(4)]
        assert delays == [1e-3, 2e-3, 3e-3, 3e-3]

    def test_max_retries_exhausts(self):
        _, mgr, st = self._manager(retry_budget_iops=None, max_retries=2)
        assert mgr._allow_retry(st, mgr.sim.now, 1) is not None
        assert mgr._allow_retry(st, mgr.sim.now, 2) is None

    def test_deadline_propagation_stops_retries(self):
        _, mgr, st = self._manager(retry_budget_iops=None, deadline_s=1e-3)
        # admitted long ago: no retry can finish inside the deadline
        assert mgr._allow_retry(st, mgr.sim.now - 1.0, 0) is None
        assert mgr.stats.deadline_exhausted == 1
        # admitted just now: the deadline still has room
        assert mgr._allow_retry(st, mgr.sim.now, 0) is not None

    def test_retry_budget_is_per_tenant_and_bounded(self):
        _, mgr, st = self._manager(
            retry_budget_iops=1e-6, retry_budget_burst=2.0
        )
        now = mgr.sim.now
        assert mgr._allow_retry(st, now, 0) is not None
        assert mgr._allow_retry(st, now, 0) is not None
        assert mgr._allow_retry(st, now, 0) is None  # burst spent
        assert mgr.stats.retry_budget_exhausted == 1
        # another tenant draws from its own bucket
        bucket = mgr._retry_bucket("someone-else")
        assert bucket is not None and bucket.try_consume(now)


# ----------------------------------------------------------------------
# scheduled shard death, rebuild, durability verdicts
# ----------------------------------------------------------------------
def chaos_fleet(n_shards, factor, at=0.02, victim="shard1", **kw):
    plan = FaultPlan(
        seed=3, device_failures=(DeviceFailure(at=at, device=victim),)
    )
    return build_fleet(
        n_shards=n_shards, replication_factor=factor, fault_plan=plan, **kw
    )


def staged_writes(fleet, blocks, times, tenant="t0"):
    c = fleet.cluster
    for t in times:
        for blk in blocks:
            fleet.sim.schedule_at(
                t, lambda b=blk: c.write(tenant, b * BS, BS)
            )
    run_all(fleet)


class TestScheduledShardDeath:
    def test_rf2_recovers_with_byte_exact_rebuild(self):
        fleet = chaos_fleet(n_shards=3, factor=2)
        c, mgr = fleet.cluster, fleet.replication
        # writes across all 4 ranges before and after the failure
        staged_writes(fleet, range(0, 256, 16), times=[0.0, 0.01, 0.04])
        assert fleet.backends["shard1"].failed
        assert fleet.health.state_of("shard1") == "dead"
        assert "shard1" in c.decommissioned
        assert "shard1" not in c.ring.shards
        assert mgr.stats.shards_failed == 1
        assert mgr.stats.rebuilds_started >= 1
        assert mgr.stats.rebuilds_completed == mgr.stats.rebuilds_started
        assert mgr.stats.rebuilds_abandoned == 0
        t = c.scheduler.state("t0").stats
        assert t.completed == t.submitted and t.unrecovered == 0
        d = mgr.audit_durability()
        assert d.verdict == "RECOVERED", (d.lost, d.under_replicated)
        # every acked block is byte-exact on every surviving replica
        for blk in sorted(c._acked_blocks):
            for name in mgr.targets(c.range_of(blk * BS)):
                dev = c.shards[name]
                assert dev.mapping.lookup(blk * BS) is not None
                assert dev._versions[blk] == mgr.versions[blk]

    def test_rf1_same_plan_is_data_loss(self):
        fleet = chaos_fleet(n_shards=3, factor=1)
        c, mgr = fleet.cluster, fleet.replication
        staged_writes(fleet, range(0, 256, 16), times=[0.0, 0.01, 0.04])
        assert fleet.health.state_of("shard1") == "dead"
        d = mgr.audit_durability()
        assert d.verdict == "DATA-LOSS" and d.lost
        assert d.exit_code == 2
        # post-death writes to the dead shard's ranges surface as
        # unrecovered on the tenant, never silently dropped
        t = c.scheduler.state("t0").stats
        assert t.unrecovered > 0
        assert t.completed == t.submitted
        assert mgr.stats.unrecovered_parts == t.unrecovered

    def test_two_shard_fleet_shrinks_to_full_redundancy(self):
        # with the dead shard out of the ring, factor clamps to 1 and the
        # surviving copy *is* full redundancy: RECOVERED, not DEGRADED
        fleet = chaos_fleet(n_shards=2, factor=2)
        staged_writes(fleet, range(0, 256, 32), times=[0.0, 0.01, 0.04])
        d = fleet.replication.audit_durability()
        assert d.verdict == "RECOVERED", (d.lost, d.under_replicated)


class TestProgramFaultDurability:
    @pytest.mark.parametrize("seed", [11, 12])
    def test_absorbed_program_faults_never_break_quorum(self, seed):
        # device-level bad blocks are retired below the cluster: every
        # acked quorum write stays durable and byte-exact on all replicas
        plan = FaultPlan(seed=seed, program_fault_prob=0.3)
        fleet = build_fleet(
            n_shards=2, replication_factor=2, quorum="all", fault_plan=plan
        )
        c, mgr = fleet.cluster, fleet.replication
        populate(fleet, list(range(0, 64, 2)) + list(range(0, 64, 4)))
        assert sum(i.stats.program_faults for i in fleet.injectors) > 0
        assert mgr.stats.quorum_failures == 0
        assert mgr.stats.unrecovered_parts == 0
        d = mgr.audit_durability()
        assert d.verdict == "RECOVERED"
        for blk in sorted(c._acked_blocks):
            for name in mgr.targets(c.range_of(blk * BS)):
                assert c.shards[name]._versions[blk] == mgr.versions[blk]


# ----------------------------------------------------------------------
# membership change during an active migration (abort, no dangling state)
# ----------------------------------------------------------------------
class TestMigrationAbortOnMembershipChange:
    def test_decommission_dst_mid_copy_aborts_cleanly(self):
        fleet = build_fleet(n_shards=3)
        c = fleet.cluster
        populate(fleet, range(32))
        src = c.owner_of(0)
        dst = next(n for n in c.shards if n != src)
        m = fleet.orchestrator.migrate(0, dst)
        fleet.sim.schedule_at(
            fleet.sim.now + 1e-6, lambda: c.decommission_shard(dst)
        )
        run_all(fleet)
        assert m.state == "aborted" and not m.done
        assert fleet.orchestrator.stats.aborted == 1
        # no dangling dual-write window or override
        assert 0 not in c.dual_writes
        assert 0 not in c.overrides
        assert c.owner_of(0) == src
        assert c.check_no_lost_writes() == []

    def test_decommission_drops_completed_cutover_override(self):
        fleet = build_fleet(n_shards=3)
        c = fleet.cluster
        populate(fleet, range(8))
        src = c.owner_of(0)
        dst = next(n for n in c.shards if n != src)
        fleet.orchestrator.migrate(0, dst)
        run_all(fleet)
        assert c.overrides[0] == dst
        c.decommission_shard(dst)
        assert 0 not in c.overrides
        assert c.owner_of(0) != dst


# ----------------------------------------------------------------------
# replica ingest primitives
# ----------------------------------------------------------------------
class TestReplicaIngest:
    def test_ingest_replica_floors_versions_and_maps(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        populate(fleet, [5])
        owner = c.owner_of(c.range_of(5 * BS))
        other = next(n for n in c.shards if n != owner)
        version = c.shards[owner]._versions[5]
        assert version >= 1
        c.shards[other].ingest_replica(5 * BS, BS, (version,))
        run_all(fleet)
        assert c.shards[other].mapping.lookup(5 * BS) is not None
        assert c.shards[other]._versions[5] == version

    def test_ingest_replica_validates(self):
        fleet = build_fleet(n_shards=1)
        dev = fleet.cluster.shards["shard0"]
        with pytest.raises(ValueError):
            dev.ingest_replica(0, 2 * BS, (1,))  # 2 blocks, 1 version
        with pytest.raises(ValueError):
            dev.ingest_replica(0, BS, (0,))  # versions start at 1

    def test_set_version_floor_never_lowers(self):
        fleet = build_fleet(n_shards=1)
        dev = fleet.cluster.shards["shard0"]
        dev.set_version_floor(9, 4)
        assert dev._versions[9] == 4
        dev.set_version_floor(9, 2)
        assert dev._versions[9] == 4
        dev.set_version_floor(9, 7)
        assert dev._versions[9] == 7


# ----------------------------------------------------------------------
# metrics & harness surface
# ----------------------------------------------------------------------
class TestFaultToleranceMetrics:
    def test_chaos_fleet_exposes_fault_vocabulary(self):
        from repro.telemetry.timeseries import (
            TimeSeriesSampler,
            bind_cluster_metrics,
        )

        fleet = chaos_fleet(n_shards=3, factor=2)
        sampler = TimeSeriesSampler(interval=5e-3)
        bind_cluster_metrics(sampler, fleet)
        sampler.start()
        staged_writes(fleet, range(0, 256, 32), times=[0.0, 0.01, 0.04])
        sampler.sample_now()
        names = sampler.names()
        for expected in (
            "cluster.unrecovered.t0",
            "cluster.replica_writes",
            "cluster.retries",
            "cluster.failovers",
            "cluster.rebuilds_active",
            "cluster.shards_alive",
            "cluster.shard_health.shard1",
        ):
            assert expected in names, (expected, names)
        assert sampler.series["cluster.shard_health.shard1"].labels == {
            "shard": "shard1"
        }

    def test_fault_free_fleet_scrape_is_unchanged(self):
        from repro.telemetry.timeseries import (
            TimeSeriesSampler,
            bind_cluster_metrics,
        )

        fleet = build_fleet(n_shards=2)
        sampler = TimeSeriesSampler(interval=5e-3)
        bind_cluster_metrics(sampler, fleet)
        sampler.start()
        populate(fleet, range(8))
        sampler.sample_now()
        names = sampler.names()
        assert "cluster.unrecovered.t0" in names
        assert not any(
            n.startswith(("cluster.replica_writes", "cluster.shards_alive",
                          "cluster.shard_health"))
            for n in names
        )


class TestChaosHarness:
    def test_run_cluster_chaos_recovers_under_rf2(self):
        from repro.bench.cluster import run_cluster

        plan = FaultPlan(
            seed=5, device_failures=(DeviceFailure(at=0.05, device="shard2"),)
        )
        report = run_cluster(
            n_shards=3, n_tenants=2, max_requests=80, capacity_mb=32,
            fault_plan=plan, replication_factor=2,
        )
        out = report.outcome
        assert out.dead_shards == ["shard2"]
        assert out.health_states["shard2"] == "dead"
        assert out.replication.shards_failed == 1
        assert out.durability.verdict == "RECOVERED", report.failures
        assert report.exit_code == 0
        text = report.render()
        assert "durability:" in text and "RECOVERED" in text
        assert "recovery: 1 shard(s) failed" in text

    def test_run_cluster_chaos_rf1_is_data_loss(self):
        from repro.bench.cluster import run_cluster

        plan = FaultPlan(
            seed=5, device_failures=(DeviceFailure(at=0.05, device="shard2"),)
        )
        report = run_cluster(
            n_shards=3, n_tenants=2, max_requests=80, capacity_mb=32,
            fault_plan=plan, replication_factor=1,
        )
        assert report.outcome.durability.verdict == "DATA-LOSS"
        assert report.exit_code == 2
        assert not report.ok
        assert report.outcome.total_unrecovered == sum(
            t.unrecovered for t in report.outcome.tenants.values()
        )
