"""Tests for the consistent-hash ring and the cluster distributer."""

import pytest

from repro.cluster import (
    ClusterReplayConfig,
    HashRing,
    TenantSpec,
    build_cluster,
)
from repro.traces.model import IORequest

KEYS = list(range(1000))


def build_fleet(n_shards=2, tenants=None, **cfg_kw):
    cfg_kw.setdefault("capacity_mb", 16)
    cfg_kw.setdefault("namespace_bytes", 4096 * 64 * 4)  # 4 ranges/tenant
    cfg_kw.setdefault("range_blocks", 64)
    cfg = ClusterReplayConfig(n_shards=n_shards, **cfg_kw)
    specs = tenants if tenants is not None else [TenantSpec("t0")]
    return build_cluster(specs, cfg)


def run_all(fleet):
    fleet.sim.run()
    fleet.flush()
    fleet.sim.run()


class TestHashRing:
    def test_deterministic_under_fixed_seed(self):
        a = HashRing(["s0", "s1", "s2"], vnodes=32, seed=7)
        b = HashRing(["s0", "s1", "s2"], vnodes=32, seed=7)
        assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]

    def test_seed_changes_placement(self):
        a = HashRing(["s0", "s1", "s2"], seed=0)
        b = HashRing(["s0", "s1", "s2"], seed=1)
        assert [a.shard_for(k) for k in KEYS] != [b.shard_for(k) for k in KEYS]

    def test_construction_order_irrelevant(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])
        assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]

    def test_add_shard_moves_bounded_fraction(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        before = {k: ring.shard_for(k) for k in KEYS}
        ring.add_shard("s4")
        after = {k: ring.shard_for(k) for k in KEYS}
        moved = [k for k in KEYS if before[k] != after[k]]
        # expectation is K/N = 200; allow 2x for hash variance
        assert len(moved) <= 2 * len(KEYS) // 5
        # adding a shard only *steals* keys — every moved key lands on it
        assert all(after[k] == "s4" for k in moved)

    def test_remove_shard_moves_only_its_keys(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        before = {k: ring.shard_for(k) for k in KEYS}
        ring.remove_shard("s2")
        after = {k: ring.shard_for(k) for k in KEYS}
        for k in KEYS:
            if before[k] != "s2":
                assert after[k] == before[k]
            else:
                assert after[k] != "s2"

    def test_virtual_node_balance(self):
        ring = HashRing([f"s{i}" for i in range(4)], vnodes=64)
        shares = ring.share_of()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert all(0.08 <= share <= 0.50 for share in shares.values())
        counts = {}
        for k in KEYS:
            counts[ring.shard_for(k)] = counts.get(ring.shard_for(k), 0) + 1
        assert all(counts.get(f"s{i}", 0) >= 50 for i in range(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)
        ring = HashRing(["a", "b"])
        with pytest.raises(ValueError):
            ring.add_shard("a")
        with pytest.raises(ValueError):
            ring.remove_shard("zz")
        ring.remove_shard("b")
        with pytest.raises(ValueError):
            ring.remove_shard("a")  # never drop the last shard


class TestClusterDistributer:
    def test_globalize_mirrors_single_device_fold(self):
        fleet = build_fleet()
        c = fleet.cluster
        req = IORequest(1.0, "W", c.namespace_bytes + 8192, 4096)
        g = c.globalize("t0", req)
        folded = c.namespace_bytes // 4096
        assert g.lba == ((req.lba // 4096) % folded) * 4096
        assert g.nbytes == 4096
        assert g.time == req.time

    def test_tenant_namespaces_disjoint(self):
        fleet = build_fleet(
            tenants=[TenantSpec("a"), TenantSpec("b")]
        )
        c = fleet.cluster
        ga = c.globalize("a", IORequest(0.0, "W", 0, 4096))
        gb = c.globalize("b", IORequest(0.0, "W", 0, 4096))
        assert ga.lba == 0
        assert gb.lba == c.namespace_bytes

    def test_write_read_complete_through_cluster(self):
        fleet = build_fleet()
        c = fleet.cluster
        done = []
        c.write("t0", 0, 8192, on_complete=lambda: done.append("w"))
        run_all(fleet)
        c.read("t0", 0, 8192, on_complete=lambda: done.append("r"))
        run_all(fleet)
        assert done == ["w", "r"]
        assert c.stats.issued_writes == 1
        assert c.stats.issued_reads == 1
        assert c.outstanding == 0
        assert c.check_no_lost_writes() == []

    def test_requests_span_ranges_without_split_on_one_owner(self):
        fleet = build_fleet(n_shards=1)
        c = fleet.cluster
        # crosses the range-0/range-1 boundary but there is one shard
        c.write("t0", c.range_bytes - 4096, 8192)
        run_all(fleet)
        assert c.stats.split_requests == 0
        assert c.check_no_lost_writes() == []

    def test_requests_split_when_owners_differ(self):
        fleet = build_fleet(n_shards=2)
        c = fleet.cluster
        boundary = None
        total = 2 * 4  # tenants x ranges per namespace
        for r in range(total - 1):
            if c.owner_of(r) != c.owner_of(r + 1):
                boundary = r
                break
        assert boundary is not None, "ring put every range on one shard"
        c.write("t0", (boundary + 1) * c.range_bytes - 4096, 8192)
        run_all(fleet)
        assert c.stats.split_requests == 1
        assert c.check_no_lost_writes() == []

    def test_trim_attempted_vs_effective(self):
        fleet = build_fleet()
        c = fleet.cluster
        c.write("t0", 0, 4096)
        run_all(fleet)
        assert c.trim("t0", 0, 4096) == 1
        assert c.trim("t0", 0, 4096) == 0  # nothing left
        assert c.stats.trims_attempted == 2
        assert c.stats.trims_effective == 1
        assert c.check_no_lost_writes() == []

    def test_lost_write_detected(self):
        fleet = build_fleet()
        c = fleet.cluster
        c.write("t0", 0, 4096)
        run_all(fleet)
        # sabotage: drop the mapping behind the cluster's back
        owner = c.owner_of(0)
        assert c.shards[owner].discard(0, 4096) == 1
        assert c.check_no_lost_writes() == [0]

    def test_uniform_block_size_required(self):
        fleet = build_fleet()
        with pytest.raises(ValueError):
            type(fleet.cluster)(
                fleet.sim, {}, [TenantSpec("x")]
            )
