"""Tests for token-bucket admission and the QoS scheduler."""

import pytest

from repro.cluster.tenants import QoSScheduler, TenantSpec, TokenBucket
from repro.sim.engine import Simulator
from repro.traces.model import IORequest


def wreq(t=0.0, lba=0):
    return IORequest(t, "W", lba, 4096)


class TestTokenBucket:
    def test_starts_full_and_consumes(self):
        b = TokenBucket(rate=10.0, burst=4.0)
        assert b.available(0.0) == 4.0
        assert b.try_consume(0.0)
        assert b.available(0.0) == 3.0

    def test_refills_continuously_and_caps_at_burst(self):
        b = TokenBucket(rate=10.0, burst=4.0)
        for _ in range(4):
            assert b.try_consume(0.0)
        assert not b.try_consume(0.0)
        assert b.try_consume(0.1)  # one token refilled
        assert b.available(100.0) == 4.0  # capped

    def test_eta_is_consumable(self):
        # regression: eta() returns the *exact* deficit-closing instant;
        # a strict comparison there once livelocked the drain loop.
        b = TokenBucket(rate=3.0, burst=1.0)
        assert b.try_consume(0.0)
        eta = b.eta(0.0)
        assert eta == pytest.approx(1 / 3)
        assert b.try_consume(eta)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("")
        with pytest.raises(ValueError):
            TenantSpec("x", rate_iops=0.0)
        with pytest.raises(ValueError):
            TenantSpec("x", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec("x", slo=-1.0)


class StubSink:
    """Records dispatches; completes them on demand."""

    def __init__(self, scheduler=None):
        self.calls = []
        self.scheduler = scheduler

    def __call__(self, st, request, arrival):
        self.calls.append((st.name, request, arrival))


class TestQoSScheduler:
    def test_unlimited_tenant_dispatches_synchronously(self):
        sim = Simulator()
        sink = StubSink()
        sched = QoSScheduler(sim, [TenantSpec("t")], sink)
        sched.submit("t", wreq())
        assert len(sink.calls) == 1  # no event round-trip
        assert sched.backlog == 0
        assert sched.state("t").stats.admitted_direct == 1

    def test_throttled_tenant_queues_past_burst(self):
        sim = Simulator()
        sink = StubSink()
        sched = QoSScheduler(
            sim, [TenantSpec("t", rate_iops=10.0, burst=2.0)], sink
        )
        for _ in range(4):
            sched.submit("t", wreq())
        assert len(sink.calls) == 2  # burst admitted directly
        assert sched.backlog == 2
        sim.run()  # drain events release the rest
        assert len(sink.calls) == 4
        assert sched.backlog == 0
        st = sched.state("t")
        assert st.stats.queued == 2
        assert st.stats.max_backlog == 2
        # third token available one bucket-period after t=0
        assert sink.calls[2][2] == 0.0  # arrival preserved for latency
        assert sim.now == pytest.approx(0.2)

    def test_fifo_within_tenant(self):
        sim = Simulator()
        sink = StubSink()
        sched = QoSScheduler(
            sim, [TenantSpec("t", rate_iops=10.0, burst=1.0)], sink
        )
        reqs = [wreq(lba=i * 4096) for i in range(3)]
        for r in reqs:
            sched.submit("t", r)
        sim.run()
        assert [c[1] for c in sink.calls] == reqs

    def test_edf_prefers_tight_slo_tenant(self):
        sim = Simulator()
        sink = StubSink()
        # one shared instant, both tenants backlogged; loose queued first
        sched = QoSScheduler(
            sim,
            [
                TenantSpec("loose", rate_iops=10.0, burst=1.0, slo=0.5),
                TenantSpec("tight", rate_iops=10.0, burst=1.0, slo=0.01),
            ],
            sink,
        )
        for name in ("loose", "tight"):
            sched.submit(name, wreq())  # consumes each burst token
        sched.submit("loose", wreq(lba=4096))
        sched.submit("tight", wreq(lba=8192))
        sim.run()
        drained = [c[0] for c in sink.calls[2:]]
        assert drained[0] == "tight"

    def test_weight_scales_deadline(self):
        sim = Simulator()
        sink = StubSink()
        # same SLO; double weight halves the effective slack
        sched = QoSScheduler(
            sim,
            [
                TenantSpec("std", rate_iops=10.0, burst=1.0, slo=0.1),
                TenantSpec("vip", rate_iops=10.0, burst=1.0, slo=0.1,
                           weight=2.0),
            ],
            sink,
        )
        for name in ("std", "vip"):
            sched.submit(name, wreq())
        sched.submit("std", wreq(lba=4096))
        sched.submit("vip", wreq(lba=8192))
        sim.run()
        assert [c[0] for c in sink.calls[2:]][0] == "vip"

    def test_note_complete_counts_slo_violations(self):
        sim = Simulator()
        sink = StubSink()
        sched = QoSScheduler(sim, [TenantSpec("t", slo=0.01)], sink)
        sched.submit("t", wreq())
        st, _req, arrival = sched.state("t"), *sink.calls[0][1:]
        sim.schedule_at(0.5, lambda: sched.note_complete(st, arrival))
        sim.run()
        assert st.stats.completed == 1
        assert st.stats.slo_violations == 1
        assert st.latency.mean() == pytest.approx(0.5)

    def test_unknown_tenant_and_unbound_dispatch(self):
        sim = Simulator()
        sched = QoSScheduler(sim, [TenantSpec("t")])
        with pytest.raises(RuntimeError):
            sched.submit("t", wreq())
        sched.bind(StubSink())
        with pytest.raises(KeyError):
            sched.submit("nope", wreq())

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError):
            QoSScheduler(
                Simulator(), [TenantSpec("t"), TenantSpec("t")]
            )
