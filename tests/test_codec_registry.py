"""Tests for the Codec abstraction and registry."""

import pytest

from repro.compression.codec import (
    Codec,
    CodecError,
    CodecRegistry,
    CompressionResult,
    MAX_TAG,
    default_registry,
)


class _FakeCodec(Codec):
    def __init__(self, name, tag):
        self.name = name
        self.tag = tag

    def compress(self, data):
        return data[: len(data) // 2 or 1]

    def decompress(self, data, original_size=None):
        return data


class TestRegistry:
    def test_register_and_get(self):
        reg = CodecRegistry()
        c = _FakeCodec("fake", 7)
        reg.register(c)
        assert reg.get("fake") is c
        assert reg.by_tag(7) is c
        assert "fake" in reg

    def test_duplicate_name_rejected(self):
        reg = CodecRegistry()
        reg.register(_FakeCodec("x", 1))
        with pytest.raises(CodecError):
            reg.register(_FakeCodec("x", 2))

    def test_duplicate_tag_rejected(self):
        reg = CodecRegistry()
        reg.register(_FakeCodec("a", 1))
        with pytest.raises(CodecError):
            reg.register(_FakeCodec("b", 1))

    def test_tag_out_of_3_bits_rejected(self):
        reg = CodecRegistry()
        with pytest.raises(CodecError):
            reg.register(_FakeCodec("big", MAX_TAG + 1))
        with pytest.raises(CodecError):
            reg.register(_FakeCodec("neg", -1))

    def test_unknown_name_raises_with_known_list(self):
        reg = CodecRegistry()
        reg.register(_FakeCodec("only", 0))
        with pytest.raises(CodecError, match="only"):
            reg.get("missing")

    def test_unknown_tag_raises(self):
        with pytest.raises(CodecError):
            CodecRegistry().by_tag(3)

    def test_iteration_and_names(self):
        reg = CodecRegistry()
        reg.register(_FakeCodec("b", 1))
        reg.register(_FakeCodec("a", 2))
        assert reg.names() == ["a", "b"]
        assert {c.name for c in reg} == {"a", "b"}


class TestDefaultRegistry:
    def test_paper_roster_present(self):
        reg = default_registry()
        for name in ("none", "lzf", "lz4", "gzip", "bzip2", "lzma", "zlib-1"):
            assert name in reg

    def test_tag_zero_is_no_compression(self):
        reg = default_registry()
        assert reg.by_tag(0).name == "none"

    def test_tags_fit_three_bits(self):
        for codec in default_registry():
            assert 0 <= codec.tag <= MAX_TAG

    def test_tags_unique(self):
        tags = [c.tag for c in default_registry()]
        assert len(tags) == len(set(tags))

    def test_all_round_trip(self):
        data = b"tagged round trip " * 100
        for codec in default_registry():
            assert codec.decompress(codec.compress(data), len(data)) == data

    def test_fresh_instances(self):
        assert default_registry() is not default_registry()


class TestCompressionResult:
    def test_ratio(self):
        r = CompressionResult("gzip", 3, 4096, b"x" * 1024)
        assert r.ratio == pytest.approx(4.0)
        assert r.compressed_size == 1024
        assert r.saved_fraction == pytest.approx(0.75)

    def test_empty_payload_infinite_ratio(self):
        r = CompressionResult("gzip", 3, 100, b"")
        assert r.ratio == float("inf")

    def test_empty_original(self):
        r = CompressionResult("none", 0, 0, b"")
        assert r.ratio == 1.0
        assert r.saved_fraction == 0.0

    def test_compress_block_helper(self):
        reg = default_registry()
        res = reg.get("gzip").compress_block(b"a" * 4096)
        assert res.codec_name == "gzip"
        assert res.tag == 3
        assert res.original_size == 4096
        assert res.compressed_size < 100
