"""Tests for the calibrated codec cost model."""

import pytest

from repro.compression.costmodel import CodecCostModel, CodecSpeed, DEFAULT_SPEEDS


class TestCodecSpeed:
    def test_validation(self):
        with pytest.raises(ValueError):
            CodecSpeed(0.0, 100.0)
        with pytest.raises(ValueError):
            CodecSpeed(100.0, -1.0)
        with pytest.raises(ValueError):
            CodecSpeed(100.0, 100.0, setup_us=-1.0)


class TestDefaults:
    def test_paper_roster_calibrated(self):
        m = CodecCostModel()
        for name in ("none", "lzf", "lz4", "gzip", "bzip2", "lzma", "zlib-1"):
            assert name in m.known_codecs()

    def test_speed_hierarchy_matches_fig2(self):
        """Fig 2: lz4 > lzf >> gzip > bzip2 on compression speed."""
        s = DEFAULT_SPEEDS
        assert s["lz4"].compress_mb_s > s["lzf"].compress_mb_s
        assert s["lzf"].compress_mb_s > s["gzip"].compress_mb_s
        assert s["gzip"].compress_mb_s > s["bzip2"].compress_mb_s

    def test_decompression_faster_than_compression(self):
        """Fig 2 / §III-E: D_Speed exceeds C_Speed for every codec."""
        for name, s in DEFAULT_SPEEDS.items():
            if name == "none":
                continue
            assert s.decompress_mb_s > s.compress_mb_s, name


class TestTimes:
    def test_none_is_free(self):
        m = CodecCostModel()
        assert m.compress_time("none", 1 << 20) == 0.0
        assert m.decompress_time("none", 1 << 20) == 0.0

    def test_time_scales_with_bytes(self):
        m = CodecCostModel()
        t1 = m.compress_time("gzip", 4096)
        t2 = m.compress_time("gzip", 8192)
        setup = DEFAULT_SPEEDS["gzip"].setup_us * 1e-6
        assert t2 - setup == pytest.approx(2 * (t1 - setup))

    def test_setup_overhead_included(self):
        m = CodecCostModel()
        assert m.compress_time("gzip", 0) == pytest.approx(
            DEFAULT_SPEEDS["gzip"].setup_us * 1e-6
        )

    def test_merged_block_cheaper_than_pieces(self):
        """Setup amortisation: one 16 KB call < four 4 KB calls."""
        m = CodecCostModel()
        assert m.compress_time("lzf", 16384) < 4 * m.compress_time("lzf", 4096)

    def test_negative_bytes_rejected(self):
        m = CodecCostModel()
        with pytest.raises(ValueError):
            m.compress_time("gzip", -1)
        with pytest.raises(ValueError):
            m.decompress_time("gzip", -1)

    def test_unknown_codec_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            CodecCostModel().compress_time("unknown", 100)


class TestScaling:
    def test_scale_divides_time(self):
        m = CodecCostModel()
        fast = m.scaled(2.0)
        assert fast.compress_time("gzip", 1 << 20) == pytest.approx(
            m.compress_time("gzip", 1 << 20) / 2
        )

    def test_scale_preserves_ordering(self):
        m = CodecCostModel().scaled(3.0)
        assert m.compress_time("bzip2", 4096) > m.compress_time("gzip", 4096)
        assert m.compress_time("gzip", 4096) > m.compress_time("lzf", 4096)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            CodecCostModel(speed_scale=0.0)

    def test_set_speed_overrides(self):
        m = CodecCostModel()
        m.set_speed("custom", CodecSpeed(50.0, 100.0))
        assert m.compress_time("custom", 50 * 1024 * 1024) == pytest.approx(
            1.0, rel=0.01
        )
