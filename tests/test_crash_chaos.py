"""End-to-end crash-chaos tests (``repro.bench.crash``).

The heart of the crash-consistency acceptance: power cuts at arbitrary
instants must end in a RECOVERED verdict — every durably acked block
readable with the right content generation, merged runs all-or-nothing,
the recovered state fingerprint-identical to the crash-free oracle and
bit-identical to a from-scratch rebuild — with only volatile-window
losses allowed.  Includes the overlay-reclamation property: overwriting
part of a merged run and crashing must reclaim the old run's storage
exactly once (no double-free, no leak) against a crash-free oracle.
"""

import pytest

from repro.bench.crash import run_crash_chaos
from repro.bench.schemes import build_device
from repro.core.config import EDCConfig
from repro.faults import FaultPlan, PowerLoss
from repro.flash.geometry import x25e_like
from repro.flash.ssd import SimulatedSSD
from repro.recovery import (
    DurableMetadataManager,
    RecoveredState,
    RecoveryParams,
    RecoveryScanner,
)
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest, WRITE

BS = 4096


class TestRunCrashChaos:
    def test_two_cuts_end_recovered(self):
        plan = FaultPlan(
            seed=11, power_losses=(PowerLoss(at=2.0), PowerLoss(at=4.0))
        )
        report = run_crash_chaos(plan, duration=6.0)
        assert report.verdict == "RECOVERED"
        assert report.exit_code == 0
        assert len(report.episodes) == 2
        for ep in report.episodes:
            assert ep.fingerprint_ok
            assert ep.rebuild_identical
            assert ep.verify.lost_acked == 0
            assert ep.verify.corrupt == 0
            assert ep.scrub is not None and ep.scrub.mismatches == 0
            assert ep.recovered_entries > 0
        assert report.final_fingerprint_ok
        # The durability tax is real and measured.
        assert report.meta_write_bytes > 0
        assert report.meta_device_seconds > 0
        assert report.acked_unflushed_peak > 0

    def test_rais5_rejected_loudly(self):
        plan = FaultPlan(power_losses=(PowerLoss(at=1.0),))
        with pytest.raises(ValueError, match="single-SSD backend"):
            run_crash_chaos(plan, backend="rais5")

    def test_needs_a_power_loss(self):
        with pytest.raises(ValueError, match="at least one"):
            run_crash_chaos(FaultPlan())

    def test_duplicate_cut_times_rejected(self):
        plan = FaultPlan(power_losses=(PowerLoss(at=1.0), PowerLoss(at=1.0)))
        with pytest.raises(ValueError, match="distinct"):
            run_crash_chaos(plan)

    def test_cli_routes_power_loss_plans(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        plan = FaultPlan(seed=3, power_losses=(PowerLoss(at=2.0),))
        path = str(tmp_path / "crash.json")
        plan.to_json(path)
        code = main(["--chaos", path, "--chaos-backend", "ssd",
                     "--duration", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "RECOVERED" in out
        assert "crash chaos" in out


def _mini_stack(journal_flush_bytes=1_000_000):
    """A bare device + manager for hand-driven crash scenarios.

    The huge journal flush threshold keeps every journal record in the
    volatile tail, so a simulated cut exercises the OOB fallback path.
    """
    sim = Simulator()
    ssd = SimulatedSSD(sim, geometry=x25e_like(64))
    content = ContentStore(ENTERPRISE_MIX, block_size=BS, pool_blocks=64)
    device = build_device(
        sim, "EDC", ssd, content, config=EDCConfig(crc_checks=True)
    )
    manager = DurableMetadataManager(RecoveryParams(
        checkpoint_interval_s=1000.0,  # no periodic checkpoint interferes
        journal_flush_bytes=journal_flush_bytes,
    ))
    manager.bind_device(device)
    return sim, ssd, device, manager


def _settle(sim, device):
    sim.run()
    device.flush()
    sim.run()


def _scan(manager):
    state, report = RecoveryScanner(
        manager.checkpoints, manager.journal, manager.oob, BS
    ).scan()
    return state, report


def _oracle(manager):
    return RecoveredState(manager.live_records, manager.next_seqno, BS)


class TestOverlayReclamationUnderRecovery:
    def test_partial_overwrite_then_crash_reclaims_exactly_once(self):
        sim, ssd, device, manager = _mini_stack()
        # One merged 4-block run...
        device.submit(IORequest(0.0, WRITE, 0, 4 * BS))
        _settle(sim, device)
        runs_before = {r.seqno: r for r in manager.live_records.values()}
        assert any(r.span > 1 for r in runs_before.values())
        # ...then overwrite two of its middle blocks and "crash" with
        # every journal record still in the volatile tail.
        device.submit(IORequest(sim.now, WRITE, BS, 2 * BS))
        _settle(sim, device)
        manager.journal.lose_volatile_tail()

        state, _ = _scan(manager)
        oracle = _oracle(manager)
        assert state.fingerprint() == oracle.fingerprint()
        # The old run survives (still covers its uncovered blocks); the
        # overwrite wins its two blocks.
        cover = state.coverage()
        old = next(r for r in runs_before.values() if r.span > 1)
        new_seqnos = set(state.records) - set(runs_before)
        assert cover[0] == old.seqno and cover[old.span - 1] == old.seqno
        assert cover[1] in new_seqnos and cover[2] in new_seqnos
        # Reclaimed exactly once: rebuilding the recovered state and
        # rebuilding the crash-free oracle agree byte-for-byte on
        # allocator occupancy — no double-free, no leaked slots.
        geo = x25e_like(64)
        recovered = state.rebuild(geometry=geo)
        reference = oracle.rebuild(geometry=geo)
        assert recovered.allocator.state_digest() == \
            reference.allocator.state_digest()
        assert recovered.allocator.live_physical_bytes == \
            device.allocator.live_physical_bytes

    def test_crash_before_overwrite_programs_keeps_old_run_whole(self):
        sim, ssd, device, manager = _mini_stack()
        device.submit(IORequest(0.0, WRITE, 0, 4 * BS))
        _settle(sim, device)
        oracle_before = _oracle(manager)
        # Submit the overwrite but cut power before any of it programs:
        # all-or-nothing means recovery must return the old run intact.
        device.submit(IORequest(sim.now, WRITE, BS, 2 * BS))
        sim.run(until=sim.now + 1e-7)
        manager.journal.lose_volatile_tail()
        state, _ = _scan(manager)
        assert state.fingerprint() == oracle_before.fingerprint()

    def test_full_overwrite_then_crash_drops_old_run(self):
        sim, ssd, device, manager = _mini_stack()
        device.submit(IORequest(0.0, WRITE, 0, 4 * BS))
        _settle(sim, device)
        old_seqnos = set(manager.live_records)
        device.submit(IORequest(sim.now, WRITE, 0, 4 * BS))
        _settle(sim, device)
        manager.journal.lose_volatile_tail()
        state, report = _scan(manager)
        # Even with the reclaim records lost, overlay resolution drops
        # the fully shadowed old run instead of resurrecting it.
        assert not (old_seqnos & set(state.records))
        assert report.shadowed_dropped >= 1
        assert state.fingerprint() == _oracle(manager).fingerprint()


@pytest.mark.slow
class TestCrashInstantSweep:
    @pytest.mark.parametrize("cut", [0.8, 1.6, 2.4, 3.2, 4.0])
    def test_any_crash_instant_recovers(self, cut):
        plan = FaultPlan(seed=11, power_losses=(PowerLoss(at=cut),))
        report = run_crash_chaos(plan, duration=5.0)
        assert report.verdict == "RECOVERED", report.render()
        ep = report.episodes[0]
        assert ep.fingerprint_ok and ep.rebuild_identical
        assert ep.verify.lost_acked == 0
