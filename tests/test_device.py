"""Tests for the EDC block device: write path, read path, mapping, stats."""

import pytest

from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice
from repro.core.policy import ElasticPolicy, FixedPolicy, NativePolicy
from repro.flash.geometry import x25e_like
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentMix, ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest


def build(policy=None, mix=None, **config_kw):
    sim = Simulator()
    ssd = SimulatedSSD(sim, geometry=x25e_like(64))
    content = ContentStore(
        mix if mix is not None else ENTERPRISE_MIX, pool_blocks=32, seed=1
    )
    cfg = EDCConfig(**config_kw)
    dev = EDCBlockDevice(
        sim, ssd, policy if policy is not None else FixedPolicy("gzip"), content, cfg
    )
    return sim, ssd, dev


def drive(sim, dev, requests):
    for req in requests:
        sim.schedule_at(req.time, lambda r=req: dev.submit(r))
    sim.run()
    dev.flush()
    sim.run()


class TestWritePath:
    def test_single_write_completes(self):
        sim, _, dev = build(sd_enabled=False)
        drive(sim, dev, [IORequest(0.0, "W", 0, 4096)])
        assert dev.outstanding == 0
        assert dev.write_latency.count == 1
        assert dev.stats.writes == 1
        assert dev.stats.logical_bytes == 4096

    def test_compressed_write_stores_fewer_bytes(self):
        sim, ssd, dev = build(mix=ContentMix("m", {"text": 1.0}), sd_enabled=False)
        drive(sim, dev, [IORequest(0.0, "W", 0, 4096)])
        assert dev.stats.stored_bytes < 4096
        assert ssd.stats.bytes_written < 4096

    def test_native_stores_raw(self):
        sim, ssd, dev = build(policy=NativePolicy(), sd_enabled=False)
        drive(sim, dev, [IORequest(0.0, "W", 0, 4096)])
        assert dev.stats.stored_bytes == 4096
        assert dev.compression_ratio() == 1.0

    def test_unaligned_write_rounded_to_blocks(self):
        sim, _, dev = build(sd_enabled=False)
        drive(sim, dev, [IORequest(0.0, "W", 100, 512)])
        assert dev.stats.logical_bytes == 4096

    def test_multi_block_write_is_one_entry(self):
        sim, _, dev = build(sd_enabled=False)
        drive(sim, dev, [IORequest(0.0, "W", 0, 16384)])
        assert len(dev.mapping) == 1
        entry = dev.mapping.lookup(8192)[1]
        assert entry.span == 4

    def test_overwrite_updates_mapping(self):
        sim, _, dev = build(sd_enabled=False)
        drive(
            sim,
            dev,
            [IORequest(0.0, "W", 0, 4096), IORequest(0.1, "W", 0, 4096)],
        )
        assert len(dev.mapping) == 1
        assert dev.stats.writes == 2

    def test_write_latency_positive(self):
        sim, _, dev = build(sd_enabled=False)
        drive(sim, dev, [IORequest(0.0, "W", 0, 4096)])
        assert dev.write_latency.mean() > 0


class TestSequentialityIntegration:
    def test_contiguous_writes_merge(self):
        sim, _, dev = build(policy=ElasticPolicy(), sd_enabled=True)
        reqs = [IORequest(i * 1e-5, "W", i * 4096, 4096) for i in range(3)]
        drive(sim, dev, reqs)
        assert dev.stats.merged_runs >= 1
        assert dev.write_latency.count == 3  # every request gets a latency

    def test_read_flushes_pending_run(self):
        sim, _, dev = build(policy=ElasticPolicy(), sd_enabled=True)
        drive(
            sim,
            dev,
            [
                IORequest(0.0, "W", 0, 4096),
                IORequest(1e-5, "W", 4096, 4096),
                IORequest(2e-5, "R", 99 * 4096, 4096),
            ],
        )
        assert dev.sd.stats.flushes_on_read == 1

    def test_timeout_flushes_lone_write(self):
        sim, _, dev = build(policy=ElasticPolicy(), sd_enabled=True)
        drive(sim, dev, [IORequest(0.0, "W", 0, 4096)])
        # flushed by timeout or final flush; either way it completed
        assert dev.outstanding == 0
        assert dev.write_latency.count == 1

    def test_sd_timer_fires_without_explicit_flush(self):
        sim, ssd, dev = build(policy=ElasticPolicy(), sd_enabled=True)
        sim.schedule_at(0.0, lambda: dev.submit(IORequest(0.0, "W", 0, 4096)))
        sim.run()  # includes the timeout event
        assert dev.outstanding == 0
        assert dev.sd.stats.flushes_on_timeout == 1


class TestReadPath:
    def test_read_after_write(self):
        sim, _, dev = build(sd_enabled=False)
        drive(
            sim,
            dev,
            [IORequest(0.0, "W", 0, 4096), IORequest(0.1, "R", 0, 4096)],
        )
        assert dev.read_latency.count == 1

    def test_read_of_compressed_fetches_stored_size(self):
        sim, ssd, dev = build(mix=ContentMix("m", {"text": 1.0}), sd_enabled=False)
        drive(
            sim,
            dev,
            [IORequest(0.0, "W", 0, 4096), IORequest(0.1, "R", 0, 4096)],
        )
        entry = dev.mapping.lookup(0)[1]
        assert ssd.stats.bytes_read == entry.size
        assert entry.size < 4096

    def test_unmapped_read_charged_raw(self):
        sim, ssd, dev = build(sd_enabled=False)
        drive(sim, dev, [IORequest(0.0, "R", 0, 8192)])
        assert ssd.stats.bytes_read == 8192
        assert dev.read_latency.count == 1

    def test_read_spanning_entry_and_hole(self):
        sim, ssd, dev = build(sd_enabled=False)
        drive(
            sim,
            dev,
            [
                IORequest(0.0, "W", 0, 4096),
                IORequest(0.1, "R", 0, 12288),  # block 0 mapped, 1-2 not
            ],
        )
        assert ssd.stats.reads == 2  # one entry read + one raw hole read
        assert dev.read_latency.count == 1

    def test_read_of_partially_overwritten_run(self):
        sim, _, dev = build(sd_enabled=False)
        drive(
            sim,
            dev,
            [
                IORequest(0.0, "W", 0, 12288),   # blocks 0-2
                IORequest(0.1, "W", 4096, 4096),  # overwrite block 1
                IORequest(0.2, "R", 0, 12288),
            ],
        )
        assert dev.outstanding == 0
        assert dev.read_latency.count == 1


class TestStats:
    def test_codec_shares(self):
        sim, _, dev = build(
            policy=FixedPolicy("gzip"),
            mix=ContentMix("m", {"text": 1.0}),
            sd_enabled=False,
        )
        drive(sim, dev, [IORequest(float(i) / 10, "W", i * 4096, 4096) for i in range(5)])
        shares = dev.stats.codec_shares()
        assert shares.get("gzip", 0) == pytest.approx(1.0)

    def test_incompressible_fails_75pct_under_fixed_scheme(self):
        sim, _, dev = build(
            policy=FixedPolicy("gzip"),
            mix=ContentMix("m", {"random": 1.0}),
            sd_enabled=False,
        )
        drive(sim, dev, [IORequest(0.0, "W", 0, 4096)])
        assert dev.stats.failed_75pct == 1
        assert dev.stats.stored_bytes == 4096

    def test_gate_skips_incompressible_under_edc(self):
        sim, _, dev = build(
            policy=ElasticPolicy(),
            mix=ContentMix("m", {"random": 1.0}),
            sd_enabled=False,
        )
        drive(sim, dev, [IORequest(0.0, "W", 0, 4096)])
        assert dev.stats.skipped_incompressible == 1

    def test_mean_response_combines_reads_and_writes(self):
        sim, _, dev = build(sd_enabled=False)
        drive(
            sim,
            dev,
            [IORequest(0.0, "W", 0, 4096), IORequest(0.1, "R", 0, 4096)],
        )
        total = dev.write_latency.total() + dev.read_latency.total()
        assert dev.mean_response_time() == pytest.approx(total / 2)

    def test_config_mismatch_rejected(self):
        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        content = ContentStore(ENTERPRISE_MIX, block_size=4096, pool_blocks=8)
        with pytest.raises(ValueError):
            EDCBlockDevice(
                sim, ssd, NativePolicy(), content, EDCConfig(block_size=8192)
            )


class TestEvictionPlumbing:
    def test_full_overwrite_frees_old_slot_and_extent(self):
        sim, ssd, dev = build(sd_enabled=False)
        drive(
            sim,
            dev,
            [IORequest(0.0, "W", 0, 4096), IORequest(0.1, "W", 0, 4096)],
        )
        assert dev.allocator.live_slots == 1
        assert dev.allocator.stats.frees >= 1
        assert dev.distributer.stats.trims >= 1

    def test_shadowed_run_reclaimed_after_full_cover(self):
        sim, _, dev = build(sd_enabled=False)
        reqs = [IORequest(0.0, "W", 0, 12288)]
        reqs += [IORequest(0.1 * (i + 1), "W", i * 4096, 4096) for i in range(3)]
        drive(sim, dev, reqs)
        assert len(dev.mapping) == 3
        assert dev.allocator.live_slots == 3


class TestHotColdStreams:
    def _run(self, hot_cold):
        from repro.core.policy import FixedPolicy
        from repro.traces.model import IORequest

        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(32), n_streams=2)
        content = ContentStore(ENTERPRISE_MIX, pool_blocks=16, seed=1)
        cfg = EDCConfig(sd_enabled=False, hot_cold_streams=hot_cold,
                        hot_version_threshold=3)
        dev = EDCBlockDevice(sim, ssd, FixedPolicy("lzf"), content, cfg)
        reqs = []
        t = 0.0
        # block 0 overwritten 6 times (hot), blocks 10..15 once (cold)
        for i in range(6):
            reqs.append(IORequest(t, "W", 0, 4096)); t += 0.01
        for i in range(6):
            reqs.append(IORequest(t, "W", (10 + i) * 4096, 4096)); t += 0.01
        for r in reqs:
            sim.schedule_at(r.time, lambda q=r: dev.submit(q))
        sim.run(); dev.flush(); sim.run()
        return ssd, dev

    def test_hot_writes_use_stream_one(self):
        ssd, dev = self._run(hot_cold=True)
        # Stream 1 frontier was opened (hot writes landed there).
        assert ssd.ftl._active[1] >= 0 or ssd.ftl._fill[1] > 0 or any(
            ssd.ftl._active[s] >= 0 for s in (1,)
        )
        ssd.ftl.check_invariants()

    def test_disabled_uses_single_stream(self):
        ssd, dev = self._run(hot_cold=False)
        assert ssd.ftl._active[1] == -1  # stream 1 never opened


class TestDefragment:
    def _device_with_zombie_runs(self):
        sim, ssd, dev = build(sd_enabled=False)
        reqs = [IORequest(0.0, "W", 0, 16 * 4096)]  # one 16-block run
        # overwrite 14 of its 16 blocks -> live fraction 2/16
        reqs += [
            IORequest(0.1 + i * 0.01, "W", i * 4096, 4096) for i in range(14)
        ]
        drive(sim, dev, reqs)
        return sim, ssd, dev

    def test_zombie_space_exists_before_defrag(self):
        _, _, dev = self._device_with_zombie_runs()
        eids = [e for e in dev.mapping.entry_ids() if dev.mapping.get(e).span > 1]
        assert len(eids) == 1
        assert dev.mapping.live_fraction(eids[0]) == pytest.approx(2 / 16)

    def test_defragment_reclaims_zombie_space(self):
        sim, ssd, dev = self._device_with_zombie_runs()
        before = dev.allocator.live_physical_bytes
        n = dev.defragment()
        sim.run()
        assert n == 1
        assert dev.outstanding == 0
        # The big run's slot was freed; live physical bytes dropped.
        assert dev.allocator.live_physical_bytes < before
        # Every block still resolves (blocks 14,15 via the rewrite).
        for blk in range(16):
            assert dev.mapping.lookup(blk * 4096) is not None
        dev.mapping.check_invariants()

    def test_defragment_noop_when_healthy(self):
        sim, _, dev = build(sd_enabled=False)
        drive(sim, dev, [IORequest(0.0, "W", 0, 4 * 4096)])
        assert dev.defragment() == 0

    def test_defragment_reads_verify_after(self):
        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(64))
        content = ContentStore(ENTERPRISE_MIX, pool_blocks=32, seed=1)
        cfg = EDCConfig(sd_enabled=False, store_payloads=True, verify_reads=True)
        dev = EDCBlockDevice(sim, ssd, FixedPolicy("gzip"), content, cfg)
        reqs = [IORequest(0.0, "W", 0, 8 * 4096)]
        reqs += [IORequest(0.1 + i * 0.01, "W", i * 4096, 4096) for i in range(6)]
        drive(sim, dev, reqs)
        dev.defragment()
        sim.run()
        # Read everything back bit-exactly after the rewrite.
        drive(sim, dev, [IORequest(sim.now + 0.01, "R", 0, 8 * 4096)])
        assert dev.outstanding == 0

    def test_defragment_validation(self):
        sim, _, dev = build(sd_enabled=False)
        with pytest.raises(ValueError):
            dev.defragment(live_threshold=0.0)
