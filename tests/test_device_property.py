"""Property-based end-to-end tests of the EDC device.

Hypothesis generates arbitrary request schedules; every replay must
terminate with zero outstanding requests, verified reads, and
self-consistent accounting — across policies, with and without the
Sequentiality Detector.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice
from repro.core.policy import ElasticPolicy, FixedPolicy, NativePolicy
from repro.core.replay import TraceReplayer
from repro.flash.geometry import x25e_like
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest, Trace

# One shared content store: pool generation is the expensive part.
_CONTENT_ARGS = dict(pool_blocks=32, seed=7)


requests_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.2, allow_nan=False),  # gap
        st.booleans(),                                             # is read
        st.integers(min_value=0, max_value=50),                    # block
        st.integers(min_value=1, max_value=4),                     # blocks
    ),
    min_size=1,
    max_size=60,
)


def build_trace(rows):
    reqs = []
    t = 0.0
    for gap, is_read, block, nblocks in rows:
        t += gap
        reqs.append(
            IORequest(t, "R" if is_read else "W", block * 4096, nblocks * 4096)
        )
    return Trace("prop", reqs)


def run(rows, policy, sd):
    sim = Simulator()
    ssd = SimulatedSSD(sim, geometry=x25e_like(32))
    content = ContentStore(ENTERPRISE_MIX, **_CONTENT_ARGS)
    cfg = EDCConfig(sd_enabled=sd, store_payloads=True, verify_reads=True)
    dev = EDCBlockDevice(sim, ssd, policy, content, cfg)
    out = TraceReplayer(sim, dev).replay(build_trace(rows))
    return dev, ssd, out


class TestDeviceProperties:
    @given(requests_strategy)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_edc_with_sd_always_completes_and_verifies(self, rows):
        dev, ssd, out = run(rows, ElasticPolicy(), sd=True)
        n_writes = sum(1 for _, is_read, _, _ in rows if not is_read)
        n_reads = len(rows) - n_writes
        assert dev.write_latency.count == n_writes
        assert dev.read_latency.count == n_reads
        # Accounting invariants.
        assert dev.stats.stored_bytes <= dev.stats.logical_bytes or n_writes == 0
        assert dev.stats.compression_ratio >= 1.0 or n_writes == 0
        dev.mapping.check_invariants()
        ssd.ftl.check_invariants()

    @given(requests_strategy)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fixed_gzip_always_completes(self, rows):
        dev, ssd, out = run(rows, FixedPolicy("gzip"), sd=False)
        assert out.compression_ratio >= 1.0
        ssd.ftl.check_invariants()

    @given(requests_strategy)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_native_stores_exactly_logical_bytes(self, rows):
        dev, _, out = run(rows, NativePolicy(), sd=False)
        assert dev.stats.stored_bytes == dev.stats.logical_bytes

    @given(requests_strategy)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mapping_and_allocator_agree(self, rows):
        dev, _, _ = run(rows, ElasticPolicy(), sd=True)
        # Every mapping entry owns exactly one live allocator slot.
        assert dev.allocator.live_slots == len(dev.mapping)
        for eid in dev.mapping.entry_ids():
            assert dev.allocator.lookup(eid) is not None

    @given(requests_strategy, st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_determinism_across_runs(self, rows, _salt):
        a_dev, _, a = run(rows, ElasticPolicy(), sd=True)
        b_dev, _, b = run(rows, ElasticPolicy(), sd=True)
        assert a.mean_response == b.mean_response
        assert a_dev.stats.stored_bytes == b_dev.stats.stored_bytes
