"""Unit tests for RequestDistributer capability sniffing and stats.

The distributer inspects the backend's ``submit_write``/``submit_read``
signatures once at construction and then forwards or drops the optional
``stream`` / ``on_error`` kwargs accordingly — these tests pin that
contract with fake backends at both ends of the capability spectrum.
"""

import pytest

from repro.core.distributer import DistributerStats, RequestDistributer


class FullBackend:
    """Supports multi-stream placement and error reporting."""

    def __init__(self):
        self.writes = []
        self.reads = []
        self.trimmed = set()
        self.stored = set()

    def submit_write(self, lba, nbytes, on_complete=None, key=None,
                     stream=0, on_error=None):
        self.writes.append(
            {"lba": lba, "nbytes": nbytes, "key": key,
             "stream": stream, "on_error": on_error}
        )
        self.stored.add(key)
        if on_complete:
            on_complete()

    def submit_read(self, lba, nbytes, on_complete=None, key=None,
                    on_error=None):
        self.reads.append(
            {"lba": lba, "nbytes": nbytes, "key": key, "on_error": on_error}
        )
        if on_complete:
            on_complete()

    def trim(self, key):
        self.trimmed.add(key)
        if key in self.stored:
            self.stored.remove(key)
            return True
        return False


class MinimalBackend:
    """Bare-bones backend: no stream, no on_error parameters."""

    def __init__(self):
        self.write_kwargs = []
        self.read_kwargs = []
        self.stored = set()

    def submit_write(self, lba, nbytes, on_complete=None, key=None):
        self.write_kwargs.append((lba, nbytes, key))
        self.stored.add(key)
        if on_complete:
            on_complete()

    def submit_read(self, lba, nbytes, on_complete=None, key=None):
        self.read_kwargs.append((lba, nbytes, key))
        if on_complete:
            on_complete()

    def trim(self, key):
        if key in self.stored:
            self.stored.remove(key)
            return True
        return False


class WriteOnlyErrorBackend(MinimalBackend):
    """on_error on writes only — must NOT count as error-capable."""

    def submit_write(self, lba, nbytes, on_complete=None, key=None,
                     on_error=None):
        super().submit_write(lba, nbytes, on_complete=on_complete, key=key)


class TestCapabilitySniffing:
    def test_full_backend_flags(self):
        d = RequestDistributer(FullBackend())
        assert d._supports_streams
        assert d._supports_errors

    def test_minimal_backend_flags(self):
        d = RequestDistributer(MinimalBackend())
        assert not d._supports_streams
        assert not d._supports_errors

    def test_error_support_requires_both_paths(self):
        # on_error only on submit_write is not enough: reads would raise
        d = RequestDistributer(WriteOnlyErrorBackend())
        assert not d._supports_errors


class TestKwargForwarding:
    def test_stream_forwarded_when_supported_and_nonzero(self):
        be = FullBackend()
        d = RequestDistributer(be)
        d.write("k", 0, 4096, stream=3)
        assert be.writes[-1]["stream"] == 3

    def test_stream_zero_not_forwarded_explicitly(self):
        # stream=0 means "no placement hint": the kwarg is omitted so
        # the backend's own default applies
        be = FullBackend()
        d = RequestDistributer(be)
        d.write("k", 0, 4096, stream=0)
        assert be.writes[-1]["stream"] == 0  # backend default, not passed

    def test_stream_dropped_for_minimal_backend(self):
        be = MinimalBackend()
        d = RequestDistributer(be)
        d.write("k", 0, 4096, stream=7)  # must not raise TypeError
        assert be.write_kwargs == [(0, 4096, "k")]

    def test_on_error_forwarded_on_writes(self):
        be = FullBackend()
        d = RequestDistributer(be)
        boom = lambda exc: None
        d.write("k", 0, 4096, on_error=boom)
        assert be.writes[-1]["on_error"] is boom

    def test_on_error_routed_on_reads(self):
        be = FullBackend()
        d = RequestDistributer(be)
        boom = lambda exc: None
        d.read("k", 0, 4096, on_error=boom)
        assert be.reads[-1]["on_error"] is boom

    def test_on_error_dropped_for_minimal_backend(self):
        be = MinimalBackend()
        d = RequestDistributer(be)
        d.write("k", 0, 4096, on_error=lambda exc: None)
        d.read("k", 0, 4096, on_error=lambda exc: None)
        assert len(be.write_kwargs) == 1
        assert len(be.read_kwargs) == 1

    def test_completion_callbacks_still_fire(self):
        be = MinimalBackend()
        d = RequestDistributer(be)
        done = []
        d.write("k", 0, 4096, on_complete=lambda: done.append("w"))
        d.read("k", 0, 4096, on_complete=lambda: done.append("r"))
        assert done == ["w", "r"]


class TestStatsAccounting:
    def test_issued_counts_and_bytes(self):
        d = RequestDistributer(MinimalBackend())
        d.write("a", 0, 4096)
        d.write("b", 4096, 8192)
        d.read("a", 0, 4096)
        assert d.stats.issued_writes == 2
        assert d.stats.written_bytes == 12288
        assert d.stats.issued_reads == 1
        assert d.stats.read_bytes == 4096

    def test_trim_attempted_vs_effective(self):
        be = MinimalBackend()
        d = RequestDistributer(be)
        d.write("k", 0, 4096)
        assert d.trim("k") is True      # extent existed
        assert d.trim("k") is False     # nothing left: attempted only
        assert d.trim("ghost") is False
        assert d.stats.trims_attempted == 3
        assert d.stats.trims_effective == 1

    def test_legacy_trims_alias(self):
        s = DistributerStats(trims_attempted=5, trims_effective=2)
        assert s.trims == 5

    def test_size_validation(self):
        d = RequestDistributer(MinimalBackend())
        with pytest.raises(ValueError):
            d.write("k", 0, 0)
        with pytest.raises(ValueError):
            d.read("k", 0, -1)
