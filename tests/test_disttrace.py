"""Distributed tracing: critical-path math, conservation, bit-identity."""

import io
import json

import pytest

from repro.bench.cluster import run_cluster, tenant_roster
from repro.cluster import ClusterReplayConfig, ClusterReplayer, build_cluster
from repro.telemetry import (
    NULL_DIST_TRACER,
    Span,
    Tracer,
    child_index,
    critical_path,
    dump_chrome_trace,
    dump_jsonl,
    render_exposition,
    parse_exposition,
    TimeSeriesSampler,
)
from repro.telemetry.disttrace import analyze_critical_paths
from repro.traces.multitenant import make_tenant_streams


def _manual_tracer():
    t = [0.0]
    tracer = Tracer(lambda: t[0], max_spans=1000)
    return tracer


# ----------------------------------------------------------------------
# critical_path unit behaviour
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_leaf_root_is_one_span_segment(self):
        tracer = _manual_tracer()
        root = tracer.record("cluster.write", "request", 0.0, 10.0)
        segs = critical_path(root, child_index(tracer))
        assert len(segs) == 1
        assert segs[0].kind == "span"
        assert segs[0].name == "cluster.write"
        assert segs[0].duration == pytest.approx(10.0)

    def test_partition_with_gaps_and_overlap(self):
        tracer = _manual_tracer()
        root = tracer.record("cluster.write", "request", 0.0, 10.0)
        tracer.record("a", "queue", 1.0, 4.0, parent=root)
        tracer.record("b", "flash_program", 3.0, 9.0, parent=root)
        segs = critical_path(root, child_index(tracer))
        # Walk backward from 10: [9,10] root self, [3,9] b, [1,3] a
        # (clipped by b's start), [0,1] root self.
        total = sum(s.duration for s in segs)
        assert total == pytest.approx(10.0)
        names = [s.name for s in segs]
        assert names == ["cluster.write.self", "a", "b", "cluster.write.self"]
        kinds = [s.kind for s in segs]
        assert kinds == ["self", "span", "span", "self"]
        # segments are disjoint and ordered
        for prev, nxt in zip(segs, segs[1:]):
            assert prev.end == pytest.approx(nxt.start)

    def test_nested_descent(self):
        tracer = _manual_tracer()
        root = tracer.record("cluster.write", "request", 0.0, 8.0)
        part = tracer.record("shard.part", "shard", 1.0, 8.0, parent=root)
        tracer.record("flash", "flash_program", 2.0, 7.0, parent=part)
        segs = critical_path(root, child_index(tracer))
        assert sum(s.duration for s in segs) == pytest.approx(8.0)
        assert [s.name for s in segs] == [
            "cluster.write.self", "shard.part.self", "flash",
            "shard.part.self",
        ]

    def test_zero_length_children_terminate(self):
        tracer = _manual_tracer()
        root = tracer.record("cluster.write", "request", 0.0, 5.0)
        for _ in range(4):
            tracer.record("z", "queue", 2.0, 2.0, parent=root)
        segs = critical_path(root, child_index(tracer))
        assert sum(s.duration for s in segs) == pytest.approx(5.0)

    def test_open_root_rejected(self):
        tracer = _manual_tracer()
        root = tracer.start("cluster.write", "request")
        with pytest.raises(ValueError):
            critical_path(root, {})


# ----------------------------------------------------------------------
# traced cluster runs
# ----------------------------------------------------------------------
class TestTracedCluster:
    @pytest.fixture(scope="class")
    def traced_report(self):
        return run_cluster(
            n_shards=3, n_tenants=6, max_requests=200, trace=True
        )

    def test_run_passes_and_conserves(self, traced_report):
        r = traced_report
        assert r.ok, r.failures
        assert r.critical is not None
        assert r.critical.ok
        assert r.critical.n_traces > 0
        # critical-path totals must land in real layers, not just self
        assert r.critical.layer_seconds
        assert "OK" in r.critical.render()

    def test_every_request_traced(self, traced_report):
        r = traced_report
        assert len(r.tracing.completed) == r.outcome.n_requests
        assert r.tracing.open_traces() == 0
        assert r.tracing.tracer.open_spans == 0

    def test_device_layers_nest_under_cluster_roots(self, traced_report):
        layers = {s.layer for s in traced_report.tracing.tracer}
        assert {"request", "flash_program"} <= layers
        # migration spans rode along (the exhibit forces one migration)
        assert "migration" in layers

    def test_exemplars_point_at_worst_latency(self, traced_report):
        tr = traced_report.tracing
        assert tr.exemplars
        for tenant, ex in tr.exemplars.items():
            assert ex.tenant == tenant
            assert ex.latency > 0
        keyed = tr.exposition_exemplars()
        assert all(k.startswith("cluster.tenant_p95.") for k in keyed)

    def test_conservation_detects_inflated_latency(self, traced_report):
        tr = traced_report.tracing
        sid, rec = next(iter(tr.completed.items()))
        broken = dict(tr.completed)
        broken[sid] = type(rec)(
            trace_id=rec.trace_id, tenant=rec.tenant,
            root_span_id=rec.root_span_id,
            latency=rec.latency + 1.0, parts=rec.parts,
        )

        class Fake:
            tracer = tr.tracer
            completed = broken

        report = analyze_critical_paths(Fake())
        assert not report.ok
        assert len(report.violations) == 1


class TestTraceOffBitIdentity:
    def _run(self, tracing):
        specs = tenant_roster(4)
        fleet = build_cluster(
            specs, ClusterReplayConfig(n_shards=2, capacity_mb=64),
            tracing=tracing,
        )
        replayer = ClusterReplayer(fleet)
        streams = make_tenant_streams(
            [s.name for s in specs], max_requests=150, seed=7
        )
        for stream in streams:
            replayer.schedule(stream.tenant, stream.trace)
        outcome = replayer.run()
        samples = {
            name: list(st.latency._samples)
            for name, st in fleet.cluster.scheduler.tenants.items()
        }
        digests = {
            name: (dev.mapping.state_digest(), dev.allocator.state_digest())
            for name, dev in fleet.devices.items()
        }
        return outcome.horizon, samples, digests

    def test_traced_run_bit_identical_to_untraced(self):
        assert self._run(False) == self._run(True)

    def test_untraced_fleet_holds_the_null_tracer(self):
        specs = tenant_roster(2)
        fleet = build_cluster(
            specs, ClusterReplayConfig(n_shards=2, capacity_mb=64)
        )
        assert fleet.tracing is None
        assert fleet.cluster.tracer is NULL_DIST_TRACER
        assert not fleet.cluster.tracer.enabled


# ----------------------------------------------------------------------
# exporters and span hygiene
# ----------------------------------------------------------------------
class TestExporters:
    def test_chrome_trace_is_valid_and_skips_open_spans(self):
        r = run_cluster(n_shards=2, n_tenants=4, max_requests=100, trace=True)
        tracer = r.tracing.tracer
        # monkey-append an unfinished span: it must be flagged, not dumped
        tracer.spans.append(Span(10**9, "hung", "request", 0.0))
        fp = io.StringIO()
        n = dump_chrome_trace(tracer, fp)
        doc = json.loads(fp.getvalue())
        events = doc["traceEvents"]
        assert n == sum(1 for e in events if e["ph"] == "X")
        assert doc["otherData"]["open_spans"] == 1
        assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")
        assert not any(
            e.get("name") == "hung" for e in events if e["ph"] == "X"
        )
        pids = {e["pid"] for e in events}
        assert len(pids) >= 2  # cluster + at least one shard group

    def test_jsonl_header_reports_drops(self):
        tracer = Tracer(lambda: 0.0, max_spans=1)
        tracer.record("a", "queue", 0.0, 1.0)
        tracer.record("b", "queue", 0.0, 1.0)
        assert tracer.dropped == 1
        fp = io.StringIO()
        dump_jsonl(tracer, fp)
        first = json.loads(fp.getvalue().splitlines()[0])
        assert first["meta"] == "trace_header"
        assert first["dropped"] == 1
        assert first["retained"] == 1

    def test_open_span_to_dict(self):
        span = Span(1, "x", "queue", 2.0)
        d = span.to_dict()
        assert d["end"] is None
        assert d["duration"] is None
        assert d["open"] is True
        span.end = 3.0
        d = span.to_dict()
        assert d["duration"] == pytest.approx(1.0)
        assert "open" not in d

    def test_exposition_exemplars_round_trip(self):
        sampler = TimeSeriesSampler(interval=0.25)
        s = sampler.series_for(
            "cluster.tenant_p95.t0", metric="cluster.tenant_p95",
            labels={"tenant": "t0"},
        )
        s.append(1.0, 0.5)
        text = render_exposition(
            sampler=sampler,
            exemplars={
                "cluster.tenant_p95.t0": ({"trace_id": "42"}, 0.9, 1.0)
            },
        )
        line = next(
            l for l in text.splitlines()
            if "tenant_p95" in l and not l.startswith("#") and " # " in l
        )
        assert '# {trace_id="42"}' in line
        snapshot = parse_exposition(text)  # exemplar suffix must parse away
        names = {name for name, _labels in snapshot}
        assert any("tenant_p95" in n for n in names)
