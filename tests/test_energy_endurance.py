"""Tests for the energy model (§VI #3) and endurance projection (§VI #4)."""

import pytest

from repro.energy import EnergyModel, EnergyReport, PowerParams
from repro.flash.endurance import EnduranceModel, PE_LIMITS
from repro.flash.ftl import ExtentFTL
from repro.flash.geometry import NandGeometry


class TestPowerParams:
    def test_defaults_x25e_like(self):
        p = PowerParams()
        assert p.device_active_w > p.device_idle_w

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerParams(cpu_core_active_w=-1)


class TestEnergyModel:
    def test_from_times_basic(self):
        m = EnergyModel(PowerParams(cpu_core_active_w=10, device_active_w=2,
                                    device_idle_w=0.1))
        r = m.from_times(horizon_s=100.0, cpu_busy_s=10.0,
                         device_busy_s=[20.0], logical_bytes=1 << 30)
        assert r.cpu_joules == pytest.approx(100.0)
        assert r.device_active_joules == pytest.approx(40.0)
        assert r.device_idle_joules == pytest.approx(8.0)
        assert r.total_joules == pytest.approx(148.0)
        assert r.active_joules == pytest.approx(140.0)
        assert r.joules_per_gb == pytest.approx(140.0)

    def test_multiple_devices(self):
        m = EnergyModel()
        r = m.from_times(10.0, 0.0, [2.0, 3.0, 1.0])
        assert r.device_active_joules == pytest.approx(6.0 * m.params.device_active_w)
        assert r.device_idle_joules == pytest.approx(24.0 * m.params.device_idle_w)

    def test_vs_baseline(self):
        m = EnergyModel()
        a = m.from_times(10.0, 1.0, [1.0])
        b = m.from_times(10.0, 2.0, [2.0])
        assert b.vs(a) == pytest.approx(2.0)

    def test_validation(self):
        m = EnergyModel()
        with pytest.raises(ValueError):
            m.from_times(-1.0, 0.0, [])
        with pytest.raises(ValueError):
            m.from_times(1.0, 2.0, [])  # cpu busy > horizon

    def test_measure_from_replay(self):
        from repro.core.config import EDCConfig
        from repro.core.device import EDCBlockDevice
        from repro.core.policy import FixedPolicy
        from repro.flash.geometry import x25e_like
        from repro.flash.ssd import SimulatedSSD
        from repro.sdgen.datasets import ENTERPRISE_MIX
        from repro.sdgen.generator import ContentStore
        from repro.sim.engine import Simulator
        from repro.traces.model import IORequest

        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        dev = EDCBlockDevice(
            sim, ssd, FixedPolicy("gzip"),
            ContentStore(ENTERPRISE_MIX, pool_blocks=16),
            EDCConfig(sd_enabled=False),
        )
        for i in range(10):
            sim.schedule_at(i * 0.001, lambda i=i: dev.submit(
                IORequest(i * 0.001, "W", i * 4096, 4096)))
        sim.run(); dev.flush(); sim.run()
        report = EnergyModel().measure(dev, [ssd], horizon_s=sim.now)
        assert report.cpu_joules > 0          # gzip work happened
        assert report.device_active_joules > 0
        assert report.logical_bytes == 10 * 4096


class TestEnduranceModel:
    def _worn_ftl(self, extent_size=4096, writes=400):
        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=16, op_ratio=0.25)
        ftl = ExtentFTL(geo)
        for i in range(writes):
            ftl.write(i % 8, extent_size)
        return geo, ftl

    def test_cell_types(self):
        assert PE_LIMITS["SLC"] > PE_LIMITS["MLC"] > PE_LIMITS["TLC"]
        with pytest.raises(ValueError):
            EnduranceModel("QLC")

    def test_report_fields(self):
        geo, ftl = self._worn_ftl()
        rep = EnduranceModel("SLC").report(ftl, observed_seconds=100.0)
        assert rep.total_erases > 0
        assert rep.max_block_erases >= 1
        assert rep.write_amplification >= 1.0
        assert 0 < rep.wear_fraction < 1
        assert rep.projected_lifetime_seconds > 0

    def test_no_wear_infinite_lifetime(self):
        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=16, op_ratio=0.25)
        ftl = ExtentFTL(geo)
        ftl.write("a", 4096)
        rep = EnduranceModel().report(ftl, 10.0)
        assert rep.projected_lifetime_seconds == float("inf")

    def test_compression_extends_lifetime(self):
        """§III-A: fewer stored bytes -> fewer erases -> longer life."""
        _, raw = self._worn_ftl(extent_size=4096)
        _, comp = self._worn_ftl(extent_size=2048)
        m = EnduranceModel("MLC")
        raw_rep = m.report(raw, 100.0)
        comp_rep = m.report(comp, 100.0)
        assert comp_rep.total_erases < raw_rep.total_erases
        assert comp_rep.lifetime_vs(raw_rep) > 1.0

    def test_mlc_wears_faster_than_slc(self):
        _, ftl = self._worn_ftl()
        slc = EnduranceModel("SLC").report(ftl, 100.0)
        mlc = EnduranceModel("MLC").report(ftl, 100.0)
        assert mlc.wear_fraction > slc.wear_fraction
        assert mlc.projected_lifetime_seconds < slc.projected_lifetime_seconds

    def test_dwpd(self):
        geo, ftl = self._worn_ftl()
        m = EnduranceModel("SLC")
        rep = m.report(ftl, 100.0)
        dwpd = m.drive_writes_per_day(geo, rep)
        assert dwpd > 0


class TestEnduranceEdgeCases:
    def _worn_ftl(self, extent_size=4096, writes=400):
        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=16,
                           op_ratio=0.25)
        ftl = ExtentFTL(geo)
        for i in range(writes):
            ftl.write(i % 8, extent_size)
        return geo, ftl

    def test_negative_horizon_rejected(self):
        _, ftl = self._worn_ftl()
        with pytest.raises(ValueError):
            EnduranceModel().report(ftl, -1.0)

    def test_lifetime_vs_infinite_cases(self):
        geo, worn = self._worn_ftl()
        fresh = ExtentFTL(geo)
        fresh.write("a", 4096)
        m = EnduranceModel("MLC")
        worn_rep = m.report(worn, 100.0)
        fresh_rep = m.report(fresh, 100.0)
        assert fresh_rep.projected_lifetime_seconds == float("inf")
        assert fresh_rep.lifetime_vs(worn_rep) == float("inf")
        assert worn_rep.lifetime_vs(fresh_rep) == 0.0
        assert fresh_rep.lifetime_vs(fresh_rep) == 1.0

    def test_dwpd_falls_with_write_amplification(self):
        """Same budget, higher WA -> fewer host writes per day."""
        from dataclasses import replace

        geo, ftl = self._worn_ftl()
        m = EnduranceModel("SLC")
        rep = m.report(ftl, 100.0)
        worse = replace(rep, write_amplification=rep.write_amplification * 2)
        assert m.drive_writes_per_day(geo, worse) < m.drive_writes_per_day(
            geo, rep
        )

    def test_retired_blocks_leave_wear_statistics(self):
        """A dead block must not bound the lifetime projection."""
        geo, ftl = self._worn_ftl()
        worst = max(ftl.collector.stats.erase_counts,
                    key=ftl.collector.stats.erase_counts.get)
        before = EnduranceModel().report(ftl, 100.0)
        ftl.retire_block(worst)
        after = EnduranceModel().report(ftl, 100.0)
        assert after.max_block_erases <= before.max_block_erases
        assert worst not in ftl.collector.stats.erase_counts

    def test_report_matches_smart_snapshot_inputs(self):
        """The SMART page and the endurance report agree on wear."""
        from repro.flash.endurance import PE_LIMITS as LIMITS

        geo, ftl = self._worn_ftl()
        rep = EnduranceModel("TLC").report(ftl, 50.0)
        assert rep.pe_limit == LIMITS["TLC"]
        counts = ftl.collector.stats.erase_counts
        assert rep.total_erases == sum(counts.values())
        assert rep.max_block_erases == max(counts.values())
