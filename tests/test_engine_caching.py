"""Tests for memoisation behaviour across the compression pipeline.

Replays depend on three caches for tractability: the content store's
compressed-size cache, the engine's gate-decision cache, and the content
pool itself.  These tests pin their correctness properties: caching must
never change results, only costs.
"""

import pytest

from repro.compression.codec import default_registry
from repro.core.engine import CompressionEngine
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentMix, ContentStore


@pytest.fixture
def engine():
    store = ContentStore(ENTERPRISE_MIX, pool_blocks=32, seed=4)
    return CompressionEngine(store)


@pytest.fixture
def text_engine():
    # All-compressible pool so the 75% rule never replaces the payload.
    store = ContentStore(ContentMix("t", {"text": 1.0}), pool_blocks=8, seed=4)
    return CompressionEngine(store)


class TestPlanDeterminism:
    def test_same_run_same_plan(self, engine):
        a = engine.plan_write((0, 1), "gzip", gate=True)
        b = engine.plan_write((0, 1), "gzip", gate=True)
        assert a == b

    def test_cached_and_uncached_sizes_agree(self):
        s1 = ContentStore(ENTERPRISE_MIX, pool_blocks=16, seed=9)
        s2 = ContentStore(ENTERPRISE_MIX, pool_blocks=16, seed=9)
        gzip = default_registry().get("gzip")
        ids = s1.run_ids(0, 3)
        first = s1.compressed_size(ids, gzip)   # miss
        again = s1.compressed_size(ids, gzip)   # hit
        fresh = s2.compressed_size(ids, gzip)   # miss on a twin store
        assert first == again == fresh

    def test_gate_cache_hit_counts(self, engine):
        before = engine.estimator.stats.total
        engine.plan_write((3,), "lzf", gate=True)
        mid = engine.estimator.stats.total
        engine.plan_write((3,), "lzf", gate=True)
        assert engine.estimator.stats.total == mid
        assert mid == before + 1

    def test_distinct_runs_not_conflated(self, text_engine):
        a = text_engine.plan_write((0,), "gzip", gate=False)
        b = text_engine.plan_write((1,), "gzip", gate=False)
        # The plans must reference their own content's sizes.
        store = text_engine.content
        gzip = default_registry().get("gzip")
        assert a.payload_size == len(gzip.compress(store.data_for_run((0,))))
        assert b.payload_size == len(gzip.compress(store.data_for_run((1,))))

    def test_merged_run_differs_from_pieces(self, text_engine):
        merged = text_engine.plan_write((0, 1, 2), "gzip", gate=False)
        pieces = [
            text_engine.plan_write((i,), "gzip", gate=False) for i in (0, 1, 2)
        ]
        assert merged.original_size == sum(p.original_size for p in pieces)
        # Whole-run compression is at least competitive with the sum of
        # per-piece payloads minus per-stream overheads (weak but true
        # directionally for DEFLATE on concatenations).
        assert merged.payload_size <= sum(p.payload_size for p in pieces) + 64


class TestKeepPayloads:
    def test_payloads_retained_only_when_asked(self):
        store = ContentStore(ContentMix("m", {"text": 1.0}), pool_blocks=4, seed=2)
        eng = CompressionEngine(store, keep_payloads=False)
        eng.plan_write((0,), "gzip", gate=False)
        assert len(store._payload_cache) == 0
        eng2 = CompressionEngine(store, keep_payloads=True)
        eng2.plan_write((1,), "gzip", gate=False)
        assert len(store._payload_cache) == 1
