"""Tests for the Compression & Decompression Engine (gate, 75% rule, costs)."""

import pytest

from repro.compression.costmodel import CodecCostModel
from repro.core.engine import CompressionEngine
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentMix, ContentStore


def store_of(kind, pool=16, seed=2):
    return ContentStore(ContentMix(kind, {kind: 1.0}), pool_blocks=pool, seed=seed)


@pytest.fixture
def text_engine():
    return CompressionEngine(store_of("text"))


@pytest.fixture
def random_engine():
    return CompressionEngine(store_of("random"))


class TestPolicyRawPath:
    def test_none_codec_stores_raw(self, text_engine):
        plan = text_engine.plan_write((0,), None, gate=True)
        assert plan.policy_raw
        assert plan.tag == 0
        assert plan.payload_size == plan.original_size == 4096
        assert plan.cpu_time == 0.0


class TestCompressionPath:
    def test_compressible_data_compressed(self, text_engine):
        plan = text_engine.plan_write((0,), "gzip", gate=True)
        assert plan.is_compressed
        assert plan.codec_name == "gzip"
        assert plan.tag == 3
        assert plan.payload_size < 4096 * 0.75
        assert plan.cpu_time > 0

    def test_payload_is_real_compression(self, text_engine):
        from repro.compression.codec import default_registry

        plan = text_engine.plan_write((0,), "gzip", gate=False)
        gzip = default_registry().get("gzip")
        expected = len(gzip.compress(text_engine.content.data_for_run((0,))))
        assert plan.payload_size == expected

    def test_merged_run_original_size(self, text_engine):
        plan = text_engine.plan_write((0, 1, 2), "lzf", gate=False)
        assert plan.original_size == 3 * 4096

    def test_unknown_codec_raises(self, text_engine):
        from repro.compression.codec import CodecError

        with pytest.raises(CodecError):
            text_engine.plan_write((0,), "snappy", gate=False)


class TestGate:
    def test_random_data_gated(self, random_engine):
        plan = random_engine.plan_write((0,), "gzip", gate=True)
        assert plan.gated
        assert plan.tag == 0
        assert plan.payload_size == plan.original_size
        assert plan.cpu_time > 0  # estimation is charged

    def test_gate_disabled_compresses_anyway(self, random_engine):
        plan = random_engine.plan_write((0,), "gzip", gate=False)
        assert not plan.gated
        # random data fails the 75% rule instead
        assert plan.failed_75pct
        assert plan.tag == 0

    def test_gate_decision_cached(self, random_engine):
        random_engine.plan_write((0,), "gzip", gate=True)
        calls_before = random_engine.estimator.stats.total
        random_engine.plan_write((0,), "gzip", gate=True)
        assert random_engine.estimator.stats.total == calls_before

    def test_estimation_cost_can_be_free(self):
        eng = CompressionEngine(store_of("random"), charge_estimation_cost=False)
        plan = eng.plan_write((0,), "gzip", gate=True)
        assert plan.cpu_time == 0.0


class Test75PercentRule:
    def test_barely_compressible_stored_raw(self):
        """§III-C: compressed > 75% of original -> kept uncompressed."""
        eng = CompressionEngine(store_of("compressed"), incompressible_fraction=0.75)
        plan = eng.plan_write((0,), "lzf", gate=False)
        assert plan.failed_75pct
        assert plan.tag == 0
        assert plan.payload_size == plan.original_size

    def test_cpu_still_charged_for_failed_attempt(self):
        eng = CompressionEngine(store_of("compressed"))
        plan = eng.plan_write((0,), "lzf", gate=False)
        assert plan.cpu_time > 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CompressionEngine(store_of("text"), incompressible_fraction=0.0)


class TestCosts:
    def test_cpu_time_uses_cost_model(self):
        cost = CodecCostModel()
        eng = CompressionEngine(store_of("text"), cost_model=cost,
                                charge_estimation_cost=False)
        plan = eng.plan_write((0,), "gzip", gate=False)
        assert plan.cpu_time == pytest.approx(cost.compress_time("gzip", 4096))

    def test_slower_codec_costs_more(self, text_engine):
        fast = text_engine.plan_write((0,), "lzf", gate=False)
        slow = text_engine.plan_write((0,), "bzip2", gate=False)
        assert slow.cpu_time > fast.cpu_time

    def test_decompress_time(self, text_engine):
        assert text_engine.decompress_time("none", 4096) == 0.0
        t = text_engine.decompress_time("gzip", 4096)
        assert t == pytest.approx(
            text_engine.cost_model.decompress_time("gzip", 4096)
        )

    def test_estimation_cheaper_than_gzip(self, text_engine):
        est = text_engine._estimation_time(4096)
        gz = text_engine.cost_model.compress_time("gzip", 4096)
        assert est < gz / 3
