"""Tests for compressibility estimation (the write-through gate)."""

import os
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.estimator import (
    EstimatorStats,
    SampledEstimator,
    byte_entropy,
    coreset_size,
)


class TestByteEntropy:
    def test_empty_is_zero(self):
        assert byte_entropy(b"") == 0.0

    def test_constant_is_zero(self):
        assert byte_entropy(b"\x00" * 1000) == 0.0

    def test_two_symbols_is_one_bit(self):
        assert byte_entropy(b"ab" * 500) == pytest.approx(1.0)

    def test_uniform_bytes_is_eight_bits(self):
        data = bytes(range(256)) * 16
        assert byte_entropy(data) == pytest.approx(8.0)

    def test_random_data_near_eight(self):
        assert byte_entropy(os.urandom(65536)) > 7.9

    def test_text_well_below_eight(self):
        text = open(__file__, "rb").read()
        assert byte_entropy(text) < 6.0


class TestCoresetSize:
    def test_empty(self):
        assert coreset_size(b"") == 0

    def test_constant_data(self):
        assert coreset_size(b"a" * 100) == 1

    def test_random_data_needs_many_symbols(self):
        assert coreset_size(os.urandom(65536)) > 200

    def test_coverage_bounds(self):
        with pytest.raises(ValueError):
            coreset_size(b"abc", coverage=0.0)
        with pytest.raises(ValueError):
            coreset_size(b"abc", coverage=1.5)

    def test_skewed_distribution_has_small_core(self):
        data = b"a" * 950 + bytes(range(50))
        assert coreset_size(data, coverage=0.9) <= 2


class TestSampledEstimator:
    def test_zeros_compressible(self):
        assert SampledEstimator().is_compressible(bytes(4096))

    def test_random_incompressible(self):
        assert not SampledEstimator().is_compressible(os.urandom(4096))

    def test_compressed_data_incompressible(self):
        data = zlib.compress(open(__file__, "rb").read() * 4)[:4096]
        assert not SampledEstimator().is_compressible(data)

    def test_text_compressible(self):
        text = (open(__file__, "rb").read() * 4)[:4096]
        assert SampledEstimator().is_compressible(text)

    def test_empty_not_compressible(self):
        assert not SampledEstimator().is_compressible(b"")

    def test_stats_accumulate(self):
        est = SampledEstimator()
        est.is_compressible(bytes(4096))
        est.is_compressible(os.urandom(4096))
        assert est.stats.total == 2
        assert est.stats.by_coreset >= 1
        assert est.stats.by_entropy >= 1

    def test_estimate_fraction_low_for_zeros(self):
        assert SampledEstimator().estimate_compressed_fraction(bytes(4096)) < 0.1

    def test_estimate_fraction_high_for_random(self):
        assert SampledEstimator().estimate_compressed_fraction(os.urandom(4096)) > 0.9

    def test_estimate_fraction_empty(self):
        assert SampledEstimator().estimate_compressed_fraction(b"") == 1.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SampledEstimator(ratio_threshold=0.0)
        with pytest.raises(ValueError):
            SampledEstimator(sample_fraction=1.5)
        with pytest.raises(ValueError):
            SampledEstimator(sample_pieces=0)

    def test_sample_spans_block(self):
        # Data compressible at the front, random at the back: a front-only
        # sample would be fooled; spread sampling should not be.
        data = bytes(3072) + os.urandom(1024)
        est = SampledEstimator(sample_fraction=0.25, sample_pieces=4)
        frac = est.estimate_compressed_fraction(data)
        assert 0.05 < frac < 0.9  # sees both regions


class TestPropertyBased:
    @given(st.binary(min_size=1, max_size=4096))
    @settings(max_examples=100, deadline=None)
    def test_entropy_bounds(self, data):
        assert 0.0 <= byte_entropy(data) <= 8.0

    @given(st.binary(min_size=1, max_size=4096))
    @settings(max_examples=100, deadline=None)
    def test_coreset_bounds(self, data):
        c = coreset_size(data)
        assert 1 <= c <= 256

    @given(st.binary(min_size=64, max_size=4096))
    @settings(max_examples=50, deadline=None)
    def test_is_compressible_never_crashes(self, data):
        SampledEstimator().is_compressible(data)
