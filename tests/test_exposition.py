"""Tests for the Prometheus-style text exposition (render + parse).

The golden-file test pins the exact rendered output of a hand-built
registry + sampler, so any formatting drift is a conscious change
(regenerate with ``python tests/data/make_exposition_golden.py``).
"""

import os

import pytest

from repro.telemetry import (
    ExpositionError,
    MetricsRegistry,
    TimeSeriesSampler,
    parse_exposition,
    render_exposition,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "exposition_golden.txt")


def build_fixture():
    """The deterministic registry + sampler behind the golden file."""
    metrics = MetricsRegistry()
    metrics.counter("requests").inc(42)
    metrics.gauge("utilization").set(0.375)
    h = metrics.histogram("latency_s")
    for v in (0.001, 0.002, 0.004, 0.25):
        h.add(v)
    sampler = TimeSeriesSampler(interval=0.5)
    s = sampler.series_for("compression.ratio", metric="compression.ratio")
    s.append(1.0, 1.25)
    s.append(1.5, 1.5)
    for codec, share in (("lzf", 0.75), ("gzip", 0.25)):
        cs = sampler.series_for(
            f"codec.write_share.{codec}",
            metric="codec.write_share", labels={"codec": codec},
        )
        cs.append(1.5, share)
    sampler.mark("band_switch", "0->1", t=0.75)
    # a label value exercising every text-format escape
    ns = sampler.series_for(
        "trace.note",
        metric="trace.note",
        labels={"note": 'say "hi"\\\nbye'},
    )
    ns.append(1.5, 1.0)
    return metrics, sampler


class TestRender:
    def test_counter_and_gauge_families(self):
        metrics, _ = build_fixture()
        text = render_exposition(metrics=metrics)
        assert "# TYPE edc_requests_total counter" in text
        assert "edc_requests_total 42.0" in text
        assert "# TYPE edc_utilization gauge" in text
        assert "edc_utilization 0.375" in text

    def test_histogram_is_cumulative(self):
        metrics, _ = build_fixture()
        text = render_exposition(metrics=metrics)
        lines = [l for l in text.splitlines()
                 if l.startswith("edc_latency_s")]
        buckets = [l for l in lines if "_bucket" in l]
        counts = [float(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1].startswith('edc_latency_s_bucket{le="+Inf"}')
        assert counts[-1] == 4.0
        assert "edc_latency_s_count 4.0" in text
        assert any(l.startswith("edc_latency_s_sum") for l in lines)

    def test_sampler_series_become_labelled_gauges(self):
        _, sampler = build_fixture()
        text = render_exposition(sampler=sampler)
        assert "edc_ts_compression_ratio 1.5" in text
        assert 'edc_ts_codec_write_share{codec="lzf"} 0.75' in text
        assert 'edc_ts_codec_write_share{codec="gzip"} 0.25' in text
        assert "edc_marker_band_switch_total 1.0" in text

    def test_no_duplicate_samples(self):
        metrics, sampler = build_fixture()
        text = render_exposition(metrics=metrics, sampler=sampler)
        seen = set()
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            key = line.rsplit(" ", 1)[0]
            assert key not in seen, f"duplicate sample {key!r}"
            seen.add(key)


class TestRoundTrip:
    def test_render_parse_round_trip(self):
        metrics, sampler = build_fixture()
        text = render_exposition(metrics=metrics, sampler=sampler)
        samples = parse_exposition(text)
        assert samples[("edc_requests_total", ())] == 42.0
        assert samples[("edc_utilization", ())] == 0.375
        assert samples[
            ("edc_ts_codec_write_share", (("codec", "lzf"),))
        ] == 0.75
        # every non-comment line parsed into exactly one sample
        n_lines = sum(
            1 for l in text.splitlines() if l.strip() and not l.startswith("#")
        )
        assert len(samples) == n_lines

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ExpositionError):
            parse_exposition("this is not a metric line\n")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(ExpositionError):
            parse_exposition("edc_x pancake\n")

    def test_parse_rejects_duplicates(self):
        with pytest.raises(ExpositionError):
            parse_exposition("edc_x 1.0\nedc_x 2.0\n")

    def test_parse_skips_comments_and_blanks(self):
        samples = parse_exposition("# HELP edc_x y\n\nedc_x 1.0\n")
        assert samples == {("edc_x", ()): 1.0}


class TestEscaping:
    def test_label_value_escapes_rendered(self):
        _, sampler = build_fixture()
        text = render_exposition(sampler=sampler)
        assert r'edc_ts_trace_note{note="say \"hi\"\\\nbye"} 1.0' in text

    def test_escaped_labels_round_trip(self):
        _, sampler = build_fixture()
        samples = parse_exposition(render_exposition(sampler=sampler))
        assert samples[
            ("edc_ts_trace_note", (("note", 'say "hi"\\\nbye'),))
        ] == 1.0

    def test_literal_brace_and_comma_in_value(self):
        # '}' and ',' inside quotes must not terminate the label body
        samples = parse_exposition('edc_x{a="b}c,d=\\"e"} 2.0\n')
        assert samples == {("edc_x", (("a", 'b}c,d="e'),)): 2.0}

    def test_help_text_escaped(self):
        from repro.telemetry.histograms import MetricsRegistry

        m = MetricsRegistry()
        m.counter('weird\nname"x"').inc()
        text = render_exposition(metrics=m)
        help_line = next(l for l in text.splitlines()
                         if l.startswith("# HELP"))
        assert "\n" not in help_line
        assert "\\n" in help_line

    def test_parse_rejects_bad_escape(self):
        with pytest.raises(ExpositionError):
            parse_exposition('edc_x{a="b\\q"} 1.0\n')

    def test_parse_rejects_unterminated_value(self):
        with pytest.raises(ExpositionError):
            parse_exposition('edc_x{a="b} 1.0\n')


class TestGoldenFile:
    def test_matches_committed_golden(self):
        metrics, sampler = build_fixture()
        text = render_exposition(metrics=metrics, sampler=sampler)
        with open(GOLDEN, "r", encoding="utf-8") as fp:
            assert text == fp.read()
