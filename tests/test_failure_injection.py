"""Failure-injection tests: corruption and misbehaviour must be *detected*.

A storage stack's error paths matter as much as its happy paths.  These
tests corrupt payloads, break codec contracts and misuse APIs, and check
that every failure surfaces as a typed error instead of silent data
loss.
"""

import random

import pytest

from repro.compression.codec import Codec, CodecError, CodecRegistry
from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice, IntegrityError
from repro.core.policy import FixedPolicy
from repro.faults import DeviceFailure, FaultPlan
from repro.flash.geometry import x25e_like
from repro.flash.raid import RAIS5
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentMix, ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest


class TestPayloadCorruption:
    """Bit-flips in stored payloads must fail decompression or verification."""

    @pytest.mark.parametrize("codec_name", ["lzf", "lz4", "gzip", "bzip2", "huffman"])
    def test_corrupted_payload_never_silently_wrong(self, codec_name):
        from repro.compression.codec import default_registry

        codec = default_registry().get(codec_name)
        data = (b"corruption detection test data " * 200)[:4096]
        payload = bytearray(codec.compress(data))
        # Flip a byte in the middle of the compressed stream.
        payload[len(payload) // 2] ^= 0xFF
        try:
            out = codec.decompress(bytes(payload), len(data))
        except CodecError:
            return  # detected: good
        # Some corruptions decode "successfully" in match-only formats;
        # the output must then differ (the device's verify layer catches it).
        assert out != data

    def test_device_verify_catches_content_mismatch(self):
        """If the store returns different bytes than were written, the
        verify-reads path raises IntegrityError."""
        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        content = ContentStore(ContentMix("m", {"text": 1.0}), pool_blocks=8, seed=1)
        cfg = EDCConfig(sd_enabled=False, store_payloads=True, verify_reads=True)
        dev = EDCBlockDevice(sim, ssd, FixedPolicy("gzip"), content, cfg)
        sim.schedule_at(0.0, lambda: dev.submit(IORequest(0.0, "W", 0, 4096)))
        sim.run()
        # Corrupt the cached payload the read path will verify against.
        for key in list(content._payload_cache):
            blob = bytearray(content._payload_cache[key])
            blob[0] ^= 0x01
            content._payload_cache[key] = bytes(blob)
        sim.schedule_at(sim.now + 0.1, lambda: dev.submit(IORequest(sim.now, "R", 0, 4096)))
        with pytest.raises((IntegrityError, CodecError)):
            sim.run()


class TestCodecContractViolations:
    def test_registry_rejects_broken_tag(self):
        class Broken(Codec):
            name = "broken"
            tag = 99

            def compress(self, data):
                return data

            def decompress(self, data, original_size=None):
                return data

        with pytest.raises(CodecError):
            CodecRegistry().register(Broken())

    def test_decompress_wrong_codec_stream(self):
        """Feeding one codec's output to another must not succeed silently."""
        from repro.compression.codec import default_registry

        reg = default_registry()
        data = b"cross-codec stream test " * 100
        gzip_stream = reg.get("gzip").compress(data)
        with pytest.raises(CodecError):
            reg.get("bzip2").decompress(gzip_stream, len(data))


class TestApiMisuse:
    def test_device_rejects_negative_size_via_request_validation(self):
        with pytest.raises(ValueError):
            IORequest(0.0, "W", 0, -4096)

    def test_submit_before_scheduled_time_is_callers_responsibility(self):
        """submit() uses sim.now as arrival; scheduling in the past fails."""
        from repro.sim.engine import SimulationError

        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_monitor_clamps_time_travel(self):
        # Slightly-stale timestamps (completion callbacks observing a
        # clock behind the last arrival) are clamped to the watermark
        # rather than rejected; the sample still counts.
        from repro.core.monitor import WorkloadMonitor

        m = WorkloadMonitor(window=10.0)
        m.record(1.0, "W", 4096)
        m.record(0.5, "W", 4096)
        assert m.raw_iops(1.0) == pytest.approx(2 / 10.0)


def _chaos_device(sim, plan, backend="ssd"):
    """An EDC device over a fault-injected backend, chaos-test sized."""
    if backend == "ssd":
        store = SimulatedSSD(sim, geometry=x25e_like(32))
        devices = None
    else:
        devices = [
            SimulatedSSD(sim, name=f"ssd{i}", geometry=x25e_like(32))
            for i in range(5)
        ]
        store = RAIS5(devices, stripe_unit=4096)
    plan.attach(sim, store, devices)
    content = ContentStore(ContentMix("m", {"text": 1.0}), pool_blocks=8, seed=1)
    cfg = EDCConfig(sd_enabled=False)
    dev = EDCBlockDevice(sim, store, FixedPolicy("gzip"), content, cfg)
    return dev, store, devices


class TestChaosSliceInvariants:
    """Replay chaos traffic in slices; the FTL must stay consistent
    after every slice, faults or not."""

    def test_invariants_hold_after_every_slice_single_ssd(self):
        sim = Simulator()
        plan = FaultPlan(
            seed=13,
            read_fault_prob=0.05,
            program_fault_prob=0.02,
            latency_spike_prob=0.02,
            latency_spike_s=1e-3,
        )
        dev, ssd, _ = _chaos_device(sim, plan, backend="ssd")
        rng = random.Random(99)
        t = 0.0
        for _slice in range(8):
            for _ in range(40):
                t += 5e-4
                lba = rng.randrange(0, 2000) * 4096
                op = "W" if rng.random() < 0.7 else "R"
                sim.schedule_at(
                    t, lambda t=t, op=op, lba=lba: dev.submit(
                        IORequest(t, op, lba, 4096)
                    )
                )
            sim.run()
            t = max(t, sim.now)
            ssd.ftl.check_invariants()
        assert ssd.injector.stats.read_faults > 0
        assert ssd.injector.stats.reads_unrecovered == 0

    def test_invariants_hold_through_member_failure_and_rebuild(self):
        sim = Simulator()
        plan = FaultPlan(
            seed=21,
            read_fault_prob=0.02,
            device_failures=(DeviceFailure(0.04, "ssd3"),),
            rebuild_delay_s=0.005,
            rebuild_batch_rows=4,
        )
        dev, arr, _ = _chaos_device(sim, plan, backend="rais5")
        rng = random.Random(7)
        t = 0.0
        for _slice in range(6):
            for _ in range(30):
                t += 1e-3
                lba = rng.randrange(0, 4000) * 4096
                op = "W" if rng.random() < 0.7 else "R"
                sim.schedule_at(
                    t, lambda t=t, op=op, lba=lba: dev.submit(
                        IORequest(t, op, lba, 4096)
                    )
                )
            sim.run()
            t = max(t, sim.now)
            # arr.devices, not the build-time list: the rebuild swaps
            # the failed member for a spare mid-run.
            for member in arr.devices:
                member.ftl.check_invariants()
        assert arr.stats.member_failures == 1
        assert not arr.degraded  # auto-rebuild completed
        assert arr.stats.unrecovered_reads == 0
        assert arr.stats.unrecovered_writes == 0
        assert dev.unrecovered_reads == 0
        assert dev.unrecovered_writes == 0


class TestFaultAccountingProperties:
    """Property-style checks: recovery work must never corrupt the books."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_program_fault_reprogram_never_double_charges(self, seed):
        # Every retirement reprograms the just-written extent, but the
        # FlashCost host-byte ledger must count each host write once.
        rng = random.Random(seed)
        sim = Simulator()
        plan = FaultPlan(seed=seed, program_fault_prob=0.5)
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        ssd.injector = plan.injector_for(ssd.name)
        total = 0
        for i in range(120):
            n = rng.choice([512, 2048, 4096, 8192])
            lba = rng.randrange(0, 40) * 16384
            total += n
            sim.schedule_at(i * 1e-3, lambda lba=lba, n=n: ssd.submit_write(lba, n))
        sim.run()
        assert ssd.ftl.stats.host_bytes == total
        assert ssd.injector.stats.program_faults > 0
        ssd.ftl.check_invariants()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_no_extent_leak_after_trim(self, seed):
        # Retirement relocates (and may split) extents; trimming every
        # key afterwards must still release every live byte.
        rng = random.Random(seed)
        sim = Simulator()
        plan = FaultPlan(seed=seed, program_fault_prob=0.3, read_fault_prob=0.1)
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        ssd.injector = plan.injector_for(ssd.name)
        lbas = set()
        for i in range(150):
            lba = rng.randrange(0, 60) * 16384
            lbas.add(lba)
            sim.schedule_at(
                i * 1e-3,
                lambda lba=lba, n=rng.choice([1024, 4096]): ssd.submit_write(lba, n),
            )
        sim.run()
        assert ssd.ftl.retired_blocks > 0
        for lba in lbas:
            assert ssd.trim(lba)
        assert ssd.ftl.live_bytes == 0
        assert not any(ssd.ftl.contains(lba) for lba in lbas)
        ssd.ftl.check_invariants()
