"""Failure-injection tests: corruption and misbehaviour must be *detected*.

A storage stack's error paths matter as much as its happy paths.  These
tests corrupt payloads, break codec contracts and misuse APIs, and check
that every failure surfaces as a typed error instead of silent data
loss.
"""

import pytest

from repro.compression.codec import Codec, CodecError, CodecRegistry
from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice, IntegrityError
from repro.core.policy import FixedPolicy
from repro.flash.geometry import x25e_like
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentMix, ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest


class TestPayloadCorruption:
    """Bit-flips in stored payloads must fail decompression or verification."""

    @pytest.mark.parametrize("codec_name", ["lzf", "lz4", "gzip", "bzip2", "huffman"])
    def test_corrupted_payload_never_silently_wrong(self, codec_name):
        from repro.compression.codec import default_registry

        codec = default_registry().get(codec_name)
        data = (b"corruption detection test data " * 200)[:4096]
        payload = bytearray(codec.compress(data))
        # Flip a byte in the middle of the compressed stream.
        payload[len(payload) // 2] ^= 0xFF
        try:
            out = codec.decompress(bytes(payload), len(data))
        except CodecError:
            return  # detected: good
        # Some corruptions decode "successfully" in match-only formats;
        # the output must then differ (the device's verify layer catches it).
        assert out != data

    def test_device_verify_catches_content_mismatch(self):
        """If the store returns different bytes than were written, the
        verify-reads path raises IntegrityError."""
        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        content = ContentStore(ContentMix("m", {"text": 1.0}), pool_blocks=8, seed=1)
        cfg = EDCConfig(sd_enabled=False, store_payloads=True, verify_reads=True)
        dev = EDCBlockDevice(sim, ssd, FixedPolicy("gzip"), content, cfg)
        sim.schedule_at(0.0, lambda: dev.submit(IORequest(0.0, "W", 0, 4096)))
        sim.run()
        # Corrupt the cached payload the read path will verify against.
        for key in list(content._payload_cache):
            blob = bytearray(content._payload_cache[key])
            blob[0] ^= 0x01
            content._payload_cache[key] = bytes(blob)
        sim.schedule_at(sim.now + 0.1, lambda: dev.submit(IORequest(sim.now, "R", 0, 4096)))
        with pytest.raises((IntegrityError, CodecError)):
            sim.run()


class TestCodecContractViolations:
    def test_registry_rejects_broken_tag(self):
        class Broken(Codec):
            name = "broken"
            tag = 99

            def compress(self, data):
                return data

            def decompress(self, data, original_size=None):
                return data

        with pytest.raises(CodecError):
            CodecRegistry().register(Broken())

    def test_decompress_wrong_codec_stream(self):
        """Feeding one codec's output to another must not succeed silently."""
        from repro.compression.codec import default_registry

        reg = default_registry()
        data = b"cross-codec stream test " * 100
        gzip_stream = reg.get("gzip").compress(data)
        with pytest.raises(CodecError):
            reg.get("bzip2").decompress(gzip_stream, len(data))


class TestApiMisuse:
    def test_device_rejects_negative_size_via_request_validation(self):
        with pytest.raises(ValueError):
            IORequest(0.0, "W", 0, -4096)

    def test_submit_before_scheduled_time_is_callers_responsibility(self):
        """submit() uses sim.now as arrival; scheduling in the past fails."""
        from repro.sim.engine import SimulationError

        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_monitor_clamps_time_travel(self):
        # Slightly-stale timestamps (completion callbacks observing a
        # clock behind the last arrival) are clamped to the watermark
        # rather than rejected; the sample still counts.
        from repro.core.monitor import WorkloadMonitor

        m = WorkloadMonitor(window=10.0)
        m.record(1.0, "W", 4096)
        m.record(0.5, "W", 4096)
        assert m.raw_iops(1.0) == pytest.approx(2 / 10.0)
