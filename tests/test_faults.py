"""Tests for the fault-injection subsystem (plans, retries, degraded RAIS5).

Covers the contract the chaos harness depends on: deterministic seeded
injectors, bounded-backoff read retries, remap-and-retire program
failures, single-fault absorption with event-driven rebuild on RAIS5,
typed error propagation through ``_Barrier``, and — crucially — that an
empty plan leaves a replay bit-identical to the baseline.
"""

import pytest

from repro.compression.codec import Codec, CodecError, CodecRegistry
from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice
from repro.core.policy import FixedPolicy
from repro.faults import (
    PLAN_SCHEMA,
    DeviceFailedError,
    DeviceFailure,
    FaultPlan,
    FaultStats,
    PowerLoss,
    ReadFaultError,
)
from repro.flash.geometry import NandGeometry, x25e_like
from repro.flash.raid import RAIS0, RAIS5, ArrayError, _Barrier
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.generator import ContentMix, ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest


def make_ssd(sim, plan=None, name="ssd0", mb=32):
    ssd = SimulatedSSD(sim, name=name, geometry=x25e_like(mb))
    if plan is not None:
        ssd.injector = plan.injector_for(name)
    return ssd


def make_rais5(sim, n=5, unit=4096, mb=32):
    devices = [
        SimulatedSSD(sim, name=f"ssd{i}", geometry=x25e_like(mb)) for i in range(n)
    ]
    return RAIS5(devices, stripe_unit=unit), devices


class TestFaultPlan:
    def test_round_trips_through_json(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            read_fault_prob=0.01,
            program_fault_prob=0.002,
            wear_ber_per_pe=5e-4,
            latency_spike_prob=0.005,
            latency_spike_s=0.002,
            device_failures=(DeviceFailure(5.0, "ssd2"),),
            rebuild_delay_s=0.25,
            rebuild_batch_rows=8,
        )
        path = str(tmp_path / "plan.json")
        plan.to_json(path)
        assert FaultPlan.from_json(path) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 1, "raed_fault_prob": 0.1})

    def test_device_failures_accept_dicts(self):
        plan = FaultPlan.from_dict(
            {"device_failures": [{"at": 1.0, "device": "ssd0"}]}
        )
        assert plan.device_failures == (DeviceFailure(1.0, "ssd0"),)

    def test_power_losses_round_trip_through_json(self, tmp_path):
        plan = FaultPlan(
            seed=11, power_losses=(PowerLoss(at=4.0), PowerLoss(at=9.0))
        )
        path = str(tmp_path / "crash.json")
        plan.to_json(path)
        loaded = FaultPlan.from_json(path)
        assert loaded == plan
        assert loaded.power_losses == (PowerLoss(4.0), PowerLoss(9.0))
        assert not loaded.is_empty

    def test_schema_field_serialised_and_enforced(self):
        d = FaultPlan(seed=1).to_dict()
        assert d["schema"] == PLAN_SCHEMA
        assert FaultPlan.from_dict(d) == FaultPlan(seed=1)
        with pytest.raises(ValueError, match="unsupported fault-plan schema"):
            FaultPlan.from_dict({"schema": PLAN_SCHEMA + 1})

    def test_unknown_nested_keys_rejected_with_precise_errors(self):
        with pytest.raises(ValueError, match=r"power-loss keys \['att'\]"):
            FaultPlan.from_dict({"power_losses": [{"att": 4.0}]})
        with pytest.raises(ValueError, match=r"device-failure keys \['dev'\]"):
            FaultPlan.from_dict({"device_failures": [{"at": 1.0, "dev": "x"}]})
        with pytest.raises(ValueError, match="must be a PowerLoss or mapping"):
            FaultPlan(power_losses=(4.0,))

    def test_power_loss_time_must_be_positive(self):
        with pytest.raises(ValueError, match="must be positive"):
            PowerLoss(at=0.0)
        with pytest.raises(ValueError, match="must be positive"):
            PowerLoss(at=-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"read_fault_prob": 1.5},
            {"program_fault_prob": -0.1},
            {"latency_spike_s": -1.0},
            {"max_read_retries": -1},
            {"rebuild_batch_rows": 0},
            {"retry_backoff_s": 2.0, "retry_backoff_cap_s": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_empty_plan_is_empty(self):
        assert FaultPlan.empty().is_empty
        assert not FaultPlan(read_fault_prob=0.1).is_empty
        assert not FaultPlan(device_failures=(DeviceFailure(1.0, "x"),)).is_empty

    def test_attach_rejects_unknown_device_name(self):
        sim = Simulator()
        ssd = make_ssd(sim)
        plan = FaultPlan(device_failures=(DeviceFailure(1.0, "nope"),))
        with pytest.raises(ValueError, match="unknown device"):
            plan.attach(sim, ssd)

    def test_total_stats_merges(self):
        plan = FaultPlan(seed=3)
        a, b = plan.injector_for("a"), plan.injector_for("b")
        a.stats.read_faults = 2
        b.stats.read_faults = 3
        b.stats.blocks_retired = 1
        total = plan.total_stats([a, b])
        assert total.read_faults == 5
        assert total.blocks_retired == 1
        assert set(total.as_dict()) == set(FaultStats.FIELDS)


class TestFaultInjector:
    def test_same_seed_and_name_same_rolls(self):
        plan = FaultPlan(seed=11, read_fault_prob=0.3, program_fault_prob=0.3)
        a = plan.injector_for("ssd0")
        b = plan.injector_for("ssd0")
        rolls_a = [a.roll_read_fault() for _ in range(200)]
        rolls_b = [b.roll_read_fault() for _ in range(200)]
        assert rolls_a == rolls_b

    def test_different_names_different_streams(self):
        plan = FaultPlan(seed=11, read_fault_prob=0.3)
        a = plan.injector_for("ssd0")
        b = plan.injector_for("ssd1")
        assert [a.roll_read_fault() for _ in range(200)] != [
            b.roll_read_fault() for _ in range(200)
        ]

    def test_zero_probability_draws_no_randomness(self):
        # The empty-plan bit-identity guarantee: rolls that cannot fire
        # must not consume RNG state (or count anything).
        plan = FaultPlan.empty(seed=5)
        inj = plan.injector_for("ssd0")
        state = inj.rng.getstate()
        assert not inj.roll_read_fault()
        assert not inj.roll_program_fault()
        assert inj.latency_spike() == 0.0
        assert inj.rng.getstate() == state
        assert inj.stats.as_dict() == FaultStats().as_dict()

    def test_wear_coupling_raises_probability(self):
        plan = FaultPlan(seed=2, read_fault_prob=0.0, wear_ber_per_pe=0.05)
        inj = plan.injector_for("ssd0")
        # With zero wear the probability is zero: never fires.
        assert not any(inj.roll_read_fault(wear=0) for _ in range(100))
        assert any(inj.roll_read_fault(wear=10) for _ in range(100))

    def test_backoff_doubles_and_caps(self):
        plan = FaultPlan(retry_backoff_s=1e-4, retry_backoff_cap_s=1e-3)
        inj = plan.injector_for("ssd0")
        assert inj.backoff(0) == pytest.approx(1e-4)
        assert inj.backoff(1) == pytest.approx(2e-4)
        assert inj.backoff(2) == pytest.approx(4e-4)
        assert inj.backoff(10) == pytest.approx(1e-3)  # capped
        with pytest.raises(ValueError):
            inj.backoff(-1)


class TestSsdReadRetries:
    def test_transient_faults_recovered_by_retry(self):
        sim = Simulator()
        plan = FaultPlan(seed=4, read_fault_prob=0.5, max_read_retries=8)
        ssd = make_ssd(sim, plan)
        done = []
        for i in range(50):
            sim.schedule_at(
                i * 1e-3, lambda i=i: ssd.submit_read(0, 4096, lambda: done.append(i))
            )
        sim.run()
        st = ssd.injector.stats
        assert len(done) == 50  # every read completed
        assert st.read_faults > 0
        assert st.read_retries == st.read_faults  # each fault retried
        assert st.reads_recovered > 0
        assert st.reads_unrecovered == 0

    def test_exhausted_budget_reaches_on_error(self):
        sim = Simulator()
        plan = FaultPlan(seed=1, read_fault_prob=1.0, max_read_retries=2)
        ssd = make_ssd(sim, plan)
        errors, done = [], []
        sim.schedule_at(
            0.0, lambda: ssd.submit_read(0, 4096, done.append, on_error=errors.append)
        )
        sim.run()
        assert done == []
        assert len(errors) == 1
        assert isinstance(errors[0], ReadFaultError)
        st = ssd.injector.stats
        assert st.read_faults == 3  # initial attempt + 2 retries
        assert st.read_retries == 2
        assert st.reads_unrecovered == 1

    def test_unhandled_exhaustion_raises_out_of_the_loop(self):
        sim = Simulator()
        plan = FaultPlan(seed=1, read_fault_prob=1.0, max_read_retries=0)
        ssd = make_ssd(sim, plan)
        sim.schedule_at(0.0, lambda: ssd.submit_read(0, 4096))
        with pytest.raises(ReadFaultError):
            sim.run()

    def test_retries_delay_completion_by_backoff(self):
        sim = Simulator()
        plan = FaultPlan(
            seed=1, read_fault_prob=1.0, max_read_retries=2,
            retry_backoff_s=1e-3, retry_backoff_cap_s=1e-2,
        )
        ssd = make_ssd(sim, plan)
        errors = []
        sim.schedule_at(0.0, lambda: ssd.submit_read(0, 4096, on_error=errors.append))
        sim.run()
        # 3 attempts' service plus the two backoff waits (1 ms + 2 ms).
        assert sim.now == pytest.approx(3 * ssd.service_read_time(4096) + 3e-3)


class TestSsdProgramFaults:
    def test_program_fault_retires_block_without_double_charge(self):
        sim = Simulator()
        plan = FaultPlan(seed=9, program_fault_prob=1.0)
        ssd = make_ssd(sim, plan)
        written = 0
        for i in range(8):
            sim.schedule_at(i * 1e-3, lambda i=i: ssd.submit_write(i * 4096, 4096))
            written += 4096
        sim.run()
        st = ssd.injector.stats
        assert st.program_faults == 8
        assert st.blocks_retired >= 1
        assert ssd.ftl.retired_blocks >= 1
        # Host bytes are charged exactly once per write: the reprogram
        # after a retirement must not inflate write amplification's
        # denominator.
        assert ssd.ftl.stats.host_bytes == written
        lost = ssd.ftl.retired_blocks * ssd.geometry.block_bytes
        assert ssd.ftl.effective_logical_bytes == (
            ssd.geometry.logical_bytes - lost
        )
        ssd.ftl.check_invariants()

    def test_retired_blocks_stay_out_of_service(self):
        sim = Simulator()
        plan = FaultPlan(seed=9, program_fault_prob=1.0)
        ssd = make_ssd(sim, plan)
        for i in range(200):
            sim.schedule_at(i * 1e-3, lambda i=i: ssd.submit_write(i * 4096, 4096))
        sim.run()
        ssd.ftl.check_invariants()  # retired ∉ free/sealed/active is asserted there
        assert ssd.ftl.retired_blocks > 0


class TestDeviceFailure:
    def test_failed_device_rejects_io(self):
        sim = Simulator()
        ssd = make_ssd(sim, FaultPlan.empty())
        ssd.fail_now()
        ssd.fail_now()  # idempotent
        assert ssd.injector.stats.device_failures == 1
        with pytest.raises(DeviceFailedError):
            ssd.submit_write(0, 4096)
        with pytest.raises(DeviceFailedError):
            ssd.submit_read(0, 4096)

    def test_error_delivery_is_deferred_not_reentrant(self):
        sim = Simulator()
        ssd = make_ssd(sim)
        ssd.fail_now()
        errors = []
        sim.schedule_at(
            0.0, lambda: ssd.submit_read(0, 4096, on_error=errors.append)
        )
        assert errors == []  # not delivered synchronously at submit
        sim.run()
        assert len(errors) == 1
        assert isinstance(errors[0], DeviceFailedError)

    def test_scheduled_failure_fires_via_attach(self):
        sim = Simulator()
        ssd = make_ssd(sim)
        plan = FaultPlan(device_failures=(DeviceFailure(0.5, "ssd0"),))
        plan.attach(sim, ssd)
        assert ssd.injector is not None
        sim.schedule_at(1.0, lambda: None)  # keep the sim alive past t=0.5
        sim.run()
        assert ssd.failed
        assert ssd.injector.stats.device_failures == 1


class TestBarrierErrors:
    def test_fail_suppresses_completion(self):
        done, errs = [], []
        b = _Barrier(2, lambda: done.append(1), errs.append)
        b.arrive()
        b.fail(RuntimeError("x"))
        assert done == []
        assert len(errs) == 1

    def test_only_first_failure_reported(self):
        errs = []
        b = _Barrier(3, None, errs.append)
        b.fail(RuntimeError("first"))
        b.fail(RuntimeError("second"))
        b.arrive()
        assert [str(e) for e in errs] == ["first"]

    def test_fail_without_handler_raises(self):
        b = _Barrier(1, None)
        with pytest.raises(RuntimeError, match="boom"):
            b.fail(RuntimeError("boom"))

    def test_add_grows_expected_count(self):
        done = []
        b = _Barrier(1, lambda: done.append(1))
        b.add(2)
        b.arrive()
        b.arrive()
        assert done == []
        b.arrive()
        assert done == [1]

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            _Barrier(1, None).add(-1)


class TestRais0Errors:
    def test_member_error_propagates_as_array_error(self):
        sim = Simulator()
        devices = [
            SimulatedSSD(sim, name=f"ssd{i}", geometry=x25e_like(32))
            for i in range(2)
        ]
        arr = RAIS0(devices)
        devices[1].fail_now()
        done, errs = [], []
        sim.schedule_at(
            0.0,
            lambda: arr.submit_read(
                0, 4096 * 2, on_complete=lambda: done.append(1),
                on_error=errs.append,
            ),
        )
        sim.run()
        assert done == []
        assert len(errs) == 1
        assert isinstance(errs[0], ArrayError)
        assert arr.stats.unrecovered_reads == 1


class TestRais5Degraded:
    def test_double_failure_rejected(self):
        sim = Simulator()
        arr, _ = make_rais5(sim)
        arr.fail_device(0)
        with pytest.raises(ArrayError):
            arr.fail_device(1)

    def test_member_error_enters_degraded_and_read_reconstructs(self):
        sim = Simulator()
        arr, devices = make_rais5(sim)
        done = []
        sim.schedule_at(0.0, lambda: arr.submit_write(0, 4096 * 4))
        sim.schedule_at(0.05, lambda: devices[1].fail_now())
        # Spans every data device, so some unit lands on the dead member.
        sim.schedule_at(
            0.1, lambda: arr.submit_read(0, 4096 * 4, lambda: done.append(1))
        )
        sim.run()
        assert done == [1]  # the read still completed
        assert arr.degraded
        assert arr.stats.member_failures == 1
        assert arr.stats.degraded_reads >= 1
        assert len(arr.degraded_windows) == 1
        assert arr.degraded_windows[0][1] is None  # window still open

    def test_degraded_write_folds_into_parity(self):
        sim = Simulator()
        arr, devices = make_rais5(sim)
        done = []
        sim.schedule_at(0.0, lambda: arr.submit_write(0, 4096 * 4))
        sim.schedule_at(0.05, lambda: devices[2].fail_now())
        sim.schedule_at(
            0.1, lambda: arr.submit_write(0, 4096 * 4, lambda: done.append(1))
        )
        sim.run()
        assert done == [1]
        assert arr.stats.degraded_writes >= 1
        assert arr.stats.unrecovered_writes == 0

    def test_rebuild_validates_replacement(self):
        sim = Simulator()
        arr, devices = make_rais5(sim)
        spare = SimulatedSSD(sim, name="spare", geometry=x25e_like(32))
        with pytest.raises(ArrayError, match="no failed device"):
            arr.rebuild(spare)
        arr.fail_device(0)
        small = SimulatedSSD(sim, name="small", geometry=x25e_like(16))
        with pytest.raises(ArrayError, match="too small"):
            arr.rebuild(small)
        odd_geo = NandGeometry(page_size=8192, pages_per_block=16, nblocks=512)
        odd = SimulatedSSD(sim, name="odd", geometry=odd_geo)
        with pytest.raises(ArrayError, match="geometry mismatch"):
            arr.rebuild(odd)
        with pytest.raises(ArrayError, match="already a member"):
            arr.rebuild(devices[1])
        dead = SimulatedSSD(sim, name="dead", geometry=x25e_like(32))
        dead.fail_now()
        with pytest.raises(ArrayError, match="already failed"):
            arr.rebuild(dead)
        # A valid replacement is accepted and clears degraded mode.
        arr.rebuild(spare)
        sim.run()
        assert not arr.degraded
        assert arr.stats.rebuilds == 1

    def test_auto_rebuild_returns_to_non_degraded(self):
        sim = Simulator()
        arr, devices = make_rais5(sim)
        plan = FaultPlan(
            seed=3,
            device_failures=(DeviceFailure(0.05, "ssd1"),),
            rebuild_delay_s=0.01,
            rebuild_batch_rows=4,
        )
        plan.attach(sim, arr, devices)
        # Touch a few stripe rows, then keep traffic flowing past the
        # failure so the dead member is detected and rebuilt.
        for i in range(6):
            sim.schedule_at(
                i * 5e-3, lambda i=i: arr.submit_write(i * 4096 * 4, 4096 * 4)
            )
        for i in range(4):
            sim.schedule_at(
                0.06 + i * 5e-3,
                lambda i=i: arr.submit_write(i * 4096 * 4, 4096 * 4),
            )
        sim.run()
        assert not arr.degraded
        assert arr.stats.member_failures == 1
        assert arr.stats.rebuilds == 1
        assert arr.stats.rebuilt_rows >= 1
        assert devices is not arr.devices  # original list unchanged
        assert arr.devices[1].name == "spare1"
        # The degraded window closed when the rebuild finished.
        assert len(arr.degraded_windows) == 1
        start, end = arr.degraded_windows[0]
        assert end is not None and end > start
        # Spares inherit the fault plan: their injectors join the pool.
        assert [inj.name for inj in arr.fault_injectors][-1] == "spare1"
        for d in arr.devices:
            d.ftl.check_invariants()

    def test_rows_written_during_rebuild_are_picked_up(self):
        sim = Simulator()
        arr, devices = make_rais5(sim)
        for i in range(12):
            sim.schedule_at(
                i * 1e-3, lambda i=i: arr.submit_write(i * 4096 * 4, 4096 * 4)
            )
        sim.schedule_at(0.05, lambda: arr.fail_device(1))
        spare = SimulatedSSD(sim, name="spare", geometry=x25e_like(32))
        done = []
        sim.schedule_at(
            0.06,
            lambda: arr.start_rebuild(
                spare, on_complete=lambda: done.append(sim.now), rows_per_batch=2
            ),
        )
        # Foreground write racing the rebuild touches a fresh row.
        sim.schedule_at(0.061, lambda: arr.submit_write(40 * 4096 * 4, 4096 * 4))
        sim.run()
        assert done, "rebuild never completed"
        assert not arr.degraded
        assert 40 in arr._touched_rows
        assert arr.stats.rebuilt_rows == len(arr._touched_rows)


class TestCodecFallback:
    def test_codec_error_falls_back_to_raw(self):
        class Exploding(Codec):
            name = "boom"
            tag = 1

            def compress(self, data):
                raise CodecError("injected codec failure")

            def decompress(self, data, original_size=None):
                raise CodecError("unreachable")

        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        content = ContentStore(ContentMix("m", {"text": 1.0}), pool_blocks=8, seed=1)
        registry = CodecRegistry()
        registry.register(Exploding())
        cfg = EDCConfig(sd_enabled=False)
        dev = EDCBlockDevice(
            sim, ssd, FixedPolicy("boom"), content, cfg, registry=registry
        )
        sim.schedule_at(0.0, lambda: dev.submit(IORequest(0.0, "W", 0, 4096)))
        sim.run()
        assert dev.stats.codec_fallbacks == 1
        # The write completed, stored raw.
        assert dev.stats.writes == 1
        assert dev.stats.compression_ratio == pytest.approx(1.0)


class TestEmptyPlanBitIdentity:
    @pytest.mark.parametrize("backend", ["ssd", "rais5"])
    def test_empty_plan_replay_matches_baseline(self, backend):
        from repro.bench.experiments import ReplayConfig, replay
        from repro.traces.workloads import make_workload

        trace = make_workload("Fin1", duration=2.0)
        cfg = ReplayConfig(backend=backend)
        base = replay(trace, "EDC", cfg)
        chaos = replay(trace, "EDC", cfg, fault_plan=FaultPlan.empty())
        assert base == chaos
