"""Tests for the figure drivers (small parameters — the benchmarks run the
full-size versions)."""

import numpy as np
import pytest

from repro.bench.experiments import ReplayConfig
from repro.bench.figures import (
    fig1_request_size_latency,
    fig2_codec_efficiency,
    fig3_burstiness,
    fig8_to_11_matrix,
    fig12_threshold_sensitivity,
    table1_setup,
    table2_workloads,
)


class TestFig1:
    def test_shapes_and_monotonicity(self):
        data = fig1_request_size_latency((4, 8, 16))
        assert data["size_kb"] == [4.0, 8.0, 16.0]
        assert data["read_norm"][0] == 1.0
        assert data["write_ms"][2] > data["write_ms"][0]

    def test_linearity(self):
        data = fig1_request_size_latency((4, 8, 12, 16))
        diffs = np.diff(data["write_ms"])
        assert np.allclose(diffs, diffs[0])


class TestFig2:
    def test_rows_cover_datasets_and_codecs(self):
        rows = fig2_codec_efficiency(codecs=("lzf", "gzip"), n_chunks=6, chunk_size=4096)
        assert {(r.dataset, r.codec) for r in rows} == {
            ("linux-source", "lzf"),
            ("linux-source", "gzip"),
            ("firefox", "lzf"),
            ("firefox", "gzip"),
        }

    def test_ratios_real(self):
        rows = fig2_codec_efficiency(codecs=("gzip",), n_chunks=6, chunk_size=4096)
        assert all(r.ratio > 1.0 for r in rows)


class TestFig3:
    def test_series_returned(self):
        out = fig3_burstiness(workloads=("Fin1",), duration=30.0)
        times, rates = out["Fin1"]
        assert len(times) == len(rates)
        assert rates.max() > 0


class TestTables:
    def test_table1_rows(self):
        rows = table1_setup()
        assert len(rows) >= 6
        assert all(len(r) == 2 for r in rows)

    def test_table2_rows(self):
        rows = table2_workloads(n_requests=300)
        assert [r["trace"] for r in rows] == ["Fin1", "Fin2", "Usr_0", "Prxy_0"]
        for r in rows:
            assert 0 <= r["write_ratio"] <= 1


class TestMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return fig8_to_11_matrix(
            traces=("Fin1",),
            duration=20.0,
            schemes=("Native", "Lzf"),
            cfg=ReplayConfig(capacity_mb=32, pool_blocks=32),
        )

    def test_structure(self, matrix):
        assert set(matrix.results) == {"Fin1"}
        assert set(matrix.results["Fin1"]) == {"Native", "Lzf"}

    def test_normalized_baseline_is_one(self, matrix):
        norm = matrix.normalized("mean_response")
        assert norm["Fin1"]["Native"] == pytest.approx(1.0)

    def test_mean_over_traces(self, matrix):
        means = matrix.mean_over_traces("compression_ratio")
        assert means["Native"] == pytest.approx(1.0)
        assert means["Lzf"] > 1.0


class TestFig12:
    def test_sweep_structure(self):
        pts = fig12_threshold_sensitivity(
            trace_name="Fin2",
            thresholds=(0.0, 500.0),
            duration=15.0,
            cfg=ReplayConfig(capacity_mb=32, pool_blocks=32),
        )
        assert len(pts) == 2
        assert pts[0].gzip_share == 0.0
        assert pts[1].gzip_share >= pts[0].gzip_share

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            fig12_threshold_sensitivity(thresholds=(99999.0,), duration=5.0)
