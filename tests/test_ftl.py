"""Tests for the log-structured extent FTL and its garbage collection."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.ftl import DeviceFullError, ExtentFTL, FlashCost
from repro.flash.geometry import NandGeometry


def tiny_geometry(nblocks=16, pages_per_block=4):
    """A small device so tests exercise block boundaries and GC quickly."""
    return NandGeometry(
        page_size=4096, pages_per_block=pages_per_block, nblocks=nblocks, op_ratio=0.25
    )


class TestBasicWrites:
    def test_write_and_query(self):
        ftl = ExtentFTL(tiny_geometry())
        cost = ftl.write("a", 4096)
        assert cost.host_bytes == 4096
        assert ftl.contains("a")
        assert ftl.extent_size("a") == 4096
        assert ftl.live_bytes == 4096

    def test_overwrite_invalidates_old(self):
        ftl = ExtentFTL(tiny_geometry())
        ftl.write("a", 4096)
        ftl.write("a", 2048)
        assert ftl.extent_size("a") == 2048
        assert ftl.live_bytes == 2048
        assert ftl.stats.invalidations == 1

    def test_multiple_keys(self):
        ftl = ExtentFTL(tiny_geometry())
        for i in range(5):
            ftl.write(i, 1024 * (i + 1))
        assert ftl.live_bytes == 1024 * 15
        ftl.check_invariants()

    def test_extent_spanning_blocks(self):
        geo = tiny_geometry()
        ftl = ExtentFTL(geo)
        big = geo.block_bytes * 2 + 100
        ftl.write("big", big)
        assert ftl.extent_size("big") == big
        ftl.check_invariants()

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            ExtentFTL(tiny_geometry()).write("a", 0)

    def test_unknown_key_not_contained(self):
        ftl = ExtentFTL(tiny_geometry())
        assert not ftl.contains("missing")
        assert ftl.extent_size("missing") is None


class TestTrim:
    def test_trim_removes_mapping(self):
        ftl = ExtentFTL(tiny_geometry())
        ftl.write("a", 4096)
        assert ftl.trim("a")
        assert not ftl.contains("a")
        assert ftl.live_bytes == 0

    def test_trim_missing_returns_false(self):
        assert not ExtentFTL(tiny_geometry()).trim("nope")

    def test_trim_then_rewrite(self):
        ftl = ExtentFTL(tiny_geometry())
        ftl.write("a", 4096)
        ftl.trim("a")
        ftl.write("a", 8192)
        assert ftl.extent_size("a") == 8192
        ftl.check_invariants()


class TestGarbageCollection:
    def test_gc_triggered_by_overwrites(self):
        ftl = ExtentFTL(tiny_geometry(nblocks=8))
        for _ in range(40):
            ftl.write("hot", 8192)
        assert ftl.collector.stats.erases > 0
        ftl.check_invariants()

    def test_gc_cost_reported(self):
        ftl = ExtentFTL(tiny_geometry(nblocks=8))
        total = FlashCost()
        for _ in range(60):
            total = total + ftl.write("hot", 8192)
        assert total.erases > 0
        assert total.host_bytes == 60 * 8192

    def test_write_amplification_at_least_one(self):
        ftl = ExtentFTL(tiny_geometry())
        ftl.write("a", 4096)
        assert ftl.stats.write_amplification() >= 1.0

    def test_gc_preserves_live_extents(self):
        rng = random.Random(7)
        geo = tiny_geometry(nblocks=12)
        ftl = ExtentFTL(geo)
        expected = {}
        keys = list(range(8))
        for _ in range(300):
            k = rng.choice(keys)
            size = rng.choice([1024, 2048, 4096, 6000])
            ftl.write(k, size)
            expected[k] = size
        for k, size in expected.items():
            assert ftl.extent_size(k) == size
        ftl.check_invariants()

    def test_device_full_raises(self):
        geo = tiny_geometry(nblocks=8)
        ftl = ExtentFTL(geo)
        with pytest.raises(DeviceFullError):
            for i in range(1000):
                ftl.write(i, 4096)  # distinct keys: live data only grows

    def test_full_device_recovers_after_trim(self):
        geo = tiny_geometry(nblocks=8)
        ftl = ExtentFTL(geo)
        written = []
        try:
            for i in range(1000):
                ftl.write(i, 4096)
                written.append(i)
        except DeviceFullError:
            pass
        for k in written:
            ftl.trim(k)
        ftl.write("fresh", 4096)  # usable again
        ftl.check_invariants()

    def test_erase_counts_tracked(self):
        ftl = ExtentFTL(tiny_geometry(nblocks=8))
        for _ in range(80):
            ftl.write("k", 8192)
        stats = ftl.collector.stats
        assert stats.max_erase_count >= 1
        assert sum(stats.erase_counts.values()) == stats.erases


class TestInvariantChecks:
    def test_fresh_ftl_consistent(self):
        ExtentFTL(tiny_geometry()).check_invariants()

    def test_gc_threshold_validation(self):
        with pytest.raises(ValueError):
            ExtentFTL(tiny_geometry(), gc_free_threshold=1)
        with pytest.raises(ValueError):
            ExtentFTL(tiny_geometry(nblocks=4), gc_free_threshold=4)


class TestFlashCost:
    def test_addition(self):
        a = FlashCost(host_bytes=10, moved_bytes=5, erases=1)
        b = FlashCost(host_bytes=20, moved_bytes=0, erases=2)
        c = a + b
        assert (c.host_bytes, c.moved_bytes, c.erases) == (30, 5, 3)
        assert c.total_bytes == 35


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.integers(min_value=1, max_value=12000),
            ),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_workload_invariants(self, ops):
        geo = tiny_geometry(nblocks=24)
        ftl = ExtentFTL(geo)
        expected = {}
        for key, size in ops:
            try:
                ftl.write(key, size)
            except DeviceFullError:
                break
            expected[key] = size
        ftl.check_invariants()
        for k, size in expected.items():
            assert ftl.extent_size(k) == size
        assert ftl.live_bytes == sum(expected.values())

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_overwrite_churn_never_leaks(self, keys):
        geo = tiny_geometry(nblocks=16)
        ftl = ExtentFTL(geo)
        for k in keys:
            ftl.write(k, 4096)
        ftl.check_invariants()
        assert ftl.live_bytes == len(set(keys)) * 4096


class TestMultiStream:
    def test_stream_validation(self):
        ftl = ExtentFTL(tiny_geometry(), n_streams=2)
        with pytest.raises(ValueError):
            ftl.write("a", 4096, stream=2)
        with pytest.raises(ValueError):
            ftl.write("a", 4096, stream=-1)
        with pytest.raises(ValueError):
            ExtentFTL(tiny_geometry(), n_streams=0)

    def test_device_too_small_for_streams(self):
        with pytest.raises(ValueError):
            ExtentFTL(tiny_geometry(nblocks=6), n_streams=4, gc_free_threshold=2)

    def test_streams_fill_separate_blocks(self):
        geo = tiny_geometry()
        ftl = ExtentFTL(geo, n_streams=2)
        ftl.write("hot", 1024, stream=0)
        ftl.write("cold", 1024, stream=1)
        hot_block = ftl._extents["hot"][0].block_id
        cold_block = ftl._extents["cold"][0].block_id
        assert hot_block != cold_block
        ftl.check_invariants()

    def test_hot_cold_separation_reduces_relocation(self):
        """The point of multi-stream: segregating lifetimes cuts GC work."""
        geo = tiny_geometry(nblocks=24)

        def churn(n_streams):
            ftl = ExtentFTL(geo, n_streams=n_streams)
            # 4 hot keys overwritten constantly, 40 cold keys written once
            # and overwritten rarely; mixed arrival order.
            for i in range(2500):
                if i % 10 == 0:
                    key = 100 + (i // 10) % 40   # cold
                    stream = min(n_streams - 1, 1)
                else:
                    key = i % 4                  # hot
                    stream = 0
                ftl.write(key, 4096, stream=stream)
            ftl.check_invariants()
            return ftl

        mixed = churn(1)
        separated = churn(2)
        assert (
            separated.stats.relocated_bytes <= mixed.stats.relocated_bytes
        )
        assert separated.stats.write_amplification() <= (
            mixed.stats.write_amplification()
        )

    def test_gc_relocation_does_not_disturb_host_frontier(self):
        geo = tiny_geometry(nblocks=10)
        ftl = ExtentFTL(geo)
        # Fill enough to force GC while a host frontier is part-full.
        for i in range(120):
            ftl.write(i % 5, 4096)
        ftl.check_invariants()
        # GC frontier and host frontier never alias.
        actives = [b for b in ftl._active.values() if b >= 0]
        assert len(actives) == len(set(actives))
