"""Tests for the greedy collector and GC accounting."""

import pytest

from repro.flash.ftl import ExtentFTL
from repro.flash.gc import GcStats, GreedyCollector
from repro.flash.geometry import NandGeometry


class TestVictimSelection:
    def test_picks_minimum_valid(self):
        c = GreedyCollector()
        valid = [100, 5, 50, 5, 200]
        assert c.select_victim([0, 2, 4], valid) == 2

    def test_tie_breaks_to_lowest_id(self):
        c = GreedyCollector()
        valid = [10, 10, 10]
        assert c.select_victim([2, 1], valid) == 1

    def test_no_candidates(self):
        assert GreedyCollector().select_victim([], [1, 2, 3]) is None

    def test_zero_valid_block_preferred(self):
        c = GreedyCollector()
        valid = [3, 0, 9]
        assert c.select_victim([0, 1, 2], valid) == 1


class TestStats:
    def test_note_collection_accumulates(self):
        c = GreedyCollector()
        c.note_collection(3, moved=1000, reclaimed=3000)
        c.note_collection(3, moved=500, reclaimed=3500)
        s = c.stats
        assert s.collections == 2
        assert s.moved_bytes == 1500
        assert s.reclaimed_bytes == 6500
        assert s.erases == 2
        assert s.erase_counts[3] == 2
        assert s.max_erase_count == 2

    def test_fresh_stats(self):
        s = GcStats()
        assert s.max_erase_count == 0
        assert s.erases == 0


class TestWriteAmplificationBehaviour:
    """Compression's reliability story: fewer bytes -> less GC -> fewer erases."""

    def _churn(self, extent_size, writes=400):
        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=24, op_ratio=0.2)
        ftl = ExtentFTL(geo)
        for i in range(writes):
            ftl.write(i % 16, extent_size)
        return ftl

    def test_smaller_extents_cause_fewer_erases(self):
        raw = self._churn(4096)
        compressed = self._churn(2048)
        assert compressed.collector.stats.erases < raw.collector.stats.erases

    def test_wa_grows_with_utilization(self):
        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=32, op_ratio=0.2)
        low = ExtentFTL(geo)
        high = ExtentFTL(geo)
        for i in range(2000):
            low.write(i % 8, 4096)    # 8 live blocks: lots of garbage/block
            high.write(i % 22, 4096)  # 22 live blocks: tight space
        assert high.stats.write_amplification() >= low.stats.write_amplification()

    def test_gc_reclaims_what_it_promises(self):
        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=16, op_ratio=0.25)
        ftl = ExtentFTL(geo)
        for i in range(300):
            ftl.write(i % 8, 4096)
        s = ftl.collector.stats
        assert s.moved_bytes + s.reclaimed_bytes == s.collections * geo.block_bytes


class TestWearAwareCollector:
    def test_degenerates_to_greedy_with_zero_weight(self):
        from repro.flash.gc import WearAwareCollector

        c = WearAwareCollector(block_bytes=32768, wear_weight=0.0)
        valid = [100, 5, 50]
        assert c.select_victim([0, 1, 2], valid) == 1

    def test_avoids_worn_blocks(self):
        from repro.flash.gc import WearAwareCollector

        c = WearAwareCollector(block_bytes=32768, wear_weight=1.0)
        # Block 1 has slightly less garbage but has been erased 5 times.
        for _ in range(5):
            c.stats.note_erase(1)
        valid = [1000, 500, 40000]
        # Greedy would pick 1; wear-aware pays 5 * 32768 penalty -> picks 0.
        assert c.select_victim([0, 1, 2], valid) == 0

    def test_validation(self):
        from repro.flash.gc import WearAwareCollector

        with pytest.raises(ValueError):
            WearAwareCollector(block_bytes=0)
        with pytest.raises(ValueError):
            WearAwareCollector(block_bytes=1024, wear_weight=-1)

    def test_flattens_erase_histogram_under_churn(self):
        import numpy as np

        from repro.flash.gc import WearAwareCollector

        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=24, op_ratio=0.25)

        def churn(collector):
            ftl = ExtentFTL(geo, collector=collector)
            for i in range(3000):
                # heavily skewed: a few hot keys overwritten constantly
                ftl.write(i % 6, 4096)
            return ftl

        greedy = churn(GreedyCollector())
        wear = churn(WearAwareCollector(block_bytes=geo.block_bytes, wear_weight=0.5))

        def spread(ftl):
            # Erase-count CV over ALL blocks (never-erased count as zero):
            # pure greedy hammers the few hot blocks and leaves the rest
            # untouched.
            counts = np.zeros(geo.nblocks)
            for blk, n in ftl.collector.stats.erase_counts.items():
                counts[blk] = n
            return counts.std() / max(counts.mean(), 1e-9)

        assert spread(wear) < spread(greedy) / 2
        # ... and far more blocks share the wear.
        assert len(wear.collector.stats.erase_counts) > 2 * len(
            greedy.collector.stats.erase_counts
        )
        greedy.check_invariants()
        wear.check_invariants()


class TestVictimSelectionSubsets:
    """Selection only ever considers the offered candidates."""

    def test_only_candidates_considered(self):
        c = GreedyCollector()
        valid = [0, 100, 50]
        # block 0 is emptiest overall but not a candidate
        assert c.select_victim([1, 2], valid) == 2

    def test_generator_candidates(self):
        c = GreedyCollector()
        valid = [9, 3, 7]
        assert c.select_victim((b for b in (0, 1, 2)), valid) == 1

    def test_wear_aware_tie_breaks_to_lowest_id(self):
        from repro.flash.gc import WearAwareCollector

        c = WearAwareCollector(block_bytes=4096, wear_weight=0.5)
        valid = [10, 10, 10]
        assert c.select_victim([2, 0, 1], valid) == 0

    def test_wear_aware_penalty_is_relative_to_cohort(self):
        from repro.flash.gc import WearAwareCollector

        # Both candidates equally worn: the wear term cancels and the
        # choice degenerates to greedy, however large the counts.
        c = WearAwareCollector(block_bytes=1 << 20, wear_weight=1.0)
        for _ in range(50):
            c.stats.note_erase(0)
            c.stats.note_erase(1)
        valid = [500, 400]
        assert c.select_victim([0, 1], valid) == 1


class TestRetirementAccounting:
    def test_note_retirement_moves_history(self):
        s = GcStats()
        s.note_erase(3)
        s.note_erase(3)
        s.note_erase(5)
        s.note_retirement(3)
        assert 3 not in s.erase_counts
        assert s.retired_counts[3] == 2
        assert s.retired_blocks == 1
        # the survivor now bounds wear
        assert s.max_erase_count == 1

    def test_retiring_virgin_block(self):
        s = GcStats()
        s.note_retirement(7)
        assert s.retired_counts[7] == 0
        assert s.retired_blocks == 1

    def test_snapshot_exports_retirement(self):
        s = GcStats()
        s.note_erase(1)
        s.note_retirement(1)
        snap = s.snapshot()
        assert snap["retired_blocks"] == 1.0
        assert snap["max_erase_count"] == 0.0
        assert set(snap) == {"collections", "erases", "moved_bytes",
                             "reclaimed_bytes", "max_erase_count",
                             "retired_blocks"}
