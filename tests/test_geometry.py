"""Tests for NAND geometry and timing parameters."""

import pytest

from repro.flash.geometry import (
    NandGeometry,
    NandTiming,
    X25E_GEOMETRY,
    X25E_TIMING,
    x25e_like,
)


class TestGeometry:
    def test_derived_sizes(self):
        g = NandGeometry(page_size=4096, pages_per_block=32, nblocks=100, op_ratio=0.1)
        assert g.block_bytes == 131072
        assert g.raw_bytes == 13107200
        assert g.logical_bytes == int(13107200 * 0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            NandGeometry(page_size=0)
        with pytest.raises(ValueError):
            NandGeometry(nblocks=0)
        with pytest.raises(ValueError):
            NandGeometry(op_ratio=1.0)
        with pytest.raises(ValueError):
            NandGeometry(op_ratio=-0.1)

    def test_x25e_like_capacity(self):
        g = x25e_like(64)
        assert g.raw_bytes == 64 * 1024 * 1024

    def test_x25e_like_minimum_blocks(self):
        assert x25e_like(1).nblocks >= 8

    def test_x25e_like_invalid(self):
        with pytest.raises(ValueError):
            x25e_like(0)

    def test_default_preset(self):
        assert X25E_GEOMETRY.raw_bytes == 256 * 1024 * 1024
        # erase block in the paper's cited 64-128 KB range
        assert 64 * 1024 <= X25E_GEOMETRY.block_bytes <= 128 * 1024


class TestTiming:
    def test_unit_conversions(self):
        t = NandTiming()
        assert t.read_bytes_per_s == t.read_mb_s * 1024 * 1024
        assert t.write_overhead_s == pytest.approx(t.write_overhead_us * 1e-6)
        assert t.read_overhead_s == pytest.approx(t.read_overhead_us * 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            NandTiming(read_mb_s=0)
        with pytest.raises(ValueError):
            NandTiming(write_overhead_us=-1)
        with pytest.raises(ValueError):
            NandTiming(t_erase_block_us=0)

    def test_x25e_4k_write_latency_realistic(self):
        """~120 us for a 4 KB write (write-cache-enabled X25-E)."""
        t = X25E_TIMING
        us = (t.write_overhead_s + 4096 / t.write_bytes_per_s) * 1e6
        assert 80 <= us <= 200

    def test_x25e_4k_read_latency_realistic(self):
        t = X25E_TIMING
        us = (t.read_overhead_s + 4096 / t.read_bytes_per_s) * 1e6
        assert 60 <= us <= 150

    def test_write_path_slower_than_read_path(self):
        """§II-A: asymmetric read/write performance."""
        t = X25E_TIMING
        w = t.write_overhead_s + 4096 / t.write_bytes_per_s
        r = t.read_overhead_s + 4096 / t.read_bytes_per_s
        assert w > r

    def test_erase_in_milliseconds(self):
        """§II-A: 'an erase operation typically takes milliseconds'."""
        assert X25E_TIMING.t_erase_block_us >= 1000
