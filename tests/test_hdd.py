"""Tests for the simulated HDD backend (§VI future work #2)."""

import pytest

from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice
from repro.core.policy import ElasticPolicy
from repro.flash.hdd import HddTiming, SimulatedHDD
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def hdd(sim):
    return SimulatedHDD(sim)


class TestTiming:
    def test_half_rotation(self):
        t = HddTiming(rpm=7200)
        assert t.half_rotation_s == pytest.approx(60.0 / 7200 / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            HddTiming(avg_seek_s=-1)
        with pytest.raises(ValueError):
            HddTiming(rpm=0)

    def test_random_4k_in_ms_range(self, hdd):
        # Random small I/O on a 7200rpm disk: ~10-15 ms.
        t = hdd.service_read_time(4096)
        assert 0.008 < t < 0.020

    def test_reads_and_writes_symmetric(self, hdd):
        assert hdd.service_read_time(4096) == hdd.service_write_time(4096)


class TestHeadModel:
    def test_random_access_pays_seek(self, sim, hdd):
        done = []
        hdd.submit_write(0, 4096, on_complete=lambda: done.append(sim.now))
        hdd.submit_write(10 * 1024 * 1024, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert hdd.stats.seeks == 2
        assert hdd.stats.sequential_hits == 0

    def test_sequential_access_streams(self, sim, hdd):
        hdd.submit_write(0, 4096)
        hdd.submit_write(4096, 4096)  # head is already there
        hdd.submit_write(8192, 4096)
        sim.run()
        assert hdd.stats.seeks == 1
        assert hdd.stats.sequential_hits == 2

    def test_sequential_much_faster_than_random(self, sim, hdd):
        done = []
        hdd.submit_write(0, 4096, on_complete=lambda: done.append(sim.now))
        hdd.submit_write(4096, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        first = done[0]
        second = done[1] - done[0]
        assert second < first / 5

    def test_merged_write_cheaper_than_scattered(self, sim):
        merged = SimulatedHDD(sim, name="m")
        done_m = []
        merged.submit_write(0, 16384, on_complete=lambda: done_m.append(sim.now))
        sim.run()
        sim2 = Simulator()
        scattered = SimulatedHDD(sim2, name="s")
        done_s = []
        for i in range(4):
            scattered.submit_write(
                i * 10_000_000, 4096, on_complete=lambda: done_s.append(sim2.now)
            )
        sim2.run()
        assert done_m[0] < done_s[-1] / 3

    def test_trim_is_noop(self, hdd):
        assert hdd.trim("anything") is False


class TestEdcOnHdd:
    def test_full_stack_runs_on_rust(self):
        """The paper's future-work scenario: EDC over an HDD, unchanged."""
        sim = Simulator()
        hdd = SimulatedHDD(sim)
        content = ContentStore(ENTERPRISE_MIX, pool_blocks=32, seed=1)
        cfg = EDCConfig(store_payloads=True, verify_reads=True)
        dev = EDCBlockDevice(sim, hdd, ElasticPolicy(), content, cfg)
        reqs = [IORequest(i * 0.002, "W", i * 4096, 4096) for i in range(20)]
        reqs.append(IORequest(0.2, "R", 0, 8 * 4096))
        for r in reqs:
            sim.schedule_at(r.time, lambda q=r: dev.submit(q))
        sim.run()
        dev.flush()
        sim.run()
        assert dev.outstanding == 0
        assert dev.stats.writes > 0
        assert hdd.stats.bytes_written <= 20 * 4096  # compression shrank it
