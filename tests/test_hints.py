"""Tests for semantic (file-type) compression hints (§VI future work #1)."""

import pytest

from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice
from repro.core.hints import DEFAULT_HINT_RULES, HintedPolicy, HintRules
from repro.core.policy import ElasticPolicy, IntensityBand
from repro.flash.geometry import x25e_like
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.generator import ContentMix, ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest


class TestHintRules:
    def test_default_rules_cover_known_incompressibles(self):
        assert DEFAULT_HINT_RULES.action_for("compressed") == "skip"
        assert DEFAULT_HINT_RULES.action_for("random") == "skip"
        assert DEFAULT_HINT_RULES.action_for("text") == "strong"
        assert DEFAULT_HINT_RULES.action_for("zero") == "fast"

    def test_unknown_class_unhinted(self):
        assert DEFAULT_HINT_RULES.action_for("mystery") is None
        assert DEFAULT_HINT_RULES.action_for(None) is None

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            HintRules(rules={"text": "turbo"})


IDLE = 10.0      # below the gzip band bound
BUSY = 1000.0    # inside the lzf band
PEAK = 1e9       # above the skip bound


class TestHintedPolicy:
    def test_skip_hint_forces_raw(self):
        p = HintedPolicy()
        assert p.select_codec(IDLE, hint="compressed") is None
        assert p.select_codec(BUSY, hint="random") is None

    def test_strong_hint_upgrades_busy_band(self):
        p = HintedPolicy()
        assert p.select_codec(BUSY, hint="text") == "gzip"

    def test_fast_hint_downgrades_idle_band(self):
        p = HintedPolicy()
        assert p.select_codec(IDLE, hint="zero") == "lzf"

    def test_hints_never_override_peak_protection(self):
        """Load protection wins: even 'strong' content skips at peak."""
        p = HintedPolicy()
        assert p.select_codec(PEAK, hint="text") is None

    def test_unhinted_defers_to_base(self):
        p = HintedPolicy()
        assert p.select_codec(IDLE) == "gzip"
        assert p.select_codec(BUSY) == "lzf"
        assert p.deferred == 2

    def test_decision_counters(self):
        p = HintedPolicy()
        p.select_codec(IDLE, hint="compressed")
        p.select_codec(IDLE, hint="text")
        assert p.hint_decisions["skip"] == 1
        assert p.hint_decisions["strong"] == 1

    def test_gate_exempt(self):
        p = HintedPolicy()
        assert p.gate_exempt("compressed")
        assert p.gate_exempt("text")
        assert not p.gate_exempt("mystery")
        assert not p.gate_exempt(None)

    def test_custom_base_policy(self):
        base = ElasticPolicy((IntensityBand(float("inf"), "lz4"),))
        p = HintedPolicy(base=base, rules=HintRules(rules={}, fast_codec="lz4"))
        assert p.select_codec(BUSY) == "lz4"


class TestDeviceIntegration:
    def _run(self, mix_kind, policy, semantic_hints):
        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        content = ContentStore(ContentMix("m", {mix_kind: 1.0}), pool_blocks=8, seed=1)
        cfg = EDCConfig(sd_enabled=False, semantic_hints=semantic_hints)
        dev = EDCBlockDevice(sim, ssd, policy, content, cfg)
        for i in range(4):
            sim.schedule_at(i * 0.01, lambda i=i: dev.submit(
                IORequest(i * 0.01, "W", i * 4096, 4096)))
        sim.run()
        dev.flush()
        sim.run()
        return dev

    def test_hinted_device_skips_estimator_for_known_content(self):
        dev = self._run("compressed", HintedPolicy(), semantic_hints=True)
        # Hint settled it: no estimator calls, everything stored raw.
        assert dev.engine.estimator.stats.total == 0
        assert dev.stats.compression_ratio == pytest.approx(1.0)

    def test_unhinted_device_pays_estimation(self):
        dev = self._run("compressed", ElasticPolicy(), semantic_hints=False)
        assert dev.engine.estimator.stats.total > 0

    def test_hinted_strong_content_gets_gzip_when_idle_writes(self):
        dev = self._run("text", HintedPolicy(), semantic_hints=True)
        assert dev.stats.per_codec_writes.get("gzip", 0) > 0
