"""Tests for the from-scratch canonical Huffman codec."""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.codec import CodecError
from repro.compression.huffman import (
    HuffmanCodec,
    _canonical_codes,
    _code_lengths,
    huffman_compress,
    huffman_decompress,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"aa",
            b"ab",
            b"abc" * 100,
            bytes(4096),
            bytes(range(256)),
            b"the quick brown fox " * 200,
        ],
        ids=["empty", "one", "repeat", "two", "cyclic", "zeros", "all-syms", "text"],
    )
    def test_round_trip(self, data):
        assert huffman_decompress(huffman_compress(data), len(data)) == data

    def test_round_trip_random(self):
        data = os.urandom(8192)
        assert huffman_decompress(huffman_compress(data), len(data)) == data

    def test_round_trip_without_size(self):
        data = b"entropy coding " * 300
        assert huffman_decompress(huffman_compress(data)) == data

    def test_codec_class(self):
        c = HuffmanCodec()
        assert c.tag == 7
        data = open(__file__, "rb").read()
        assert c.decompress(c.compress(data), len(data)) == data


class TestCompressionBehaviour:
    def test_skewed_data_compresses_well(self):
        data = b"a" * 3800 + bytes(range(64)) * 4
        out = huffman_compress(data)
        assert len(out) < len(data) // 3

    def test_random_data_stored_raw(self):
        data = os.urandom(4096)
        out = huffman_compress(data)
        assert out[0] == 0  # raw mode
        assert len(out) == len(data) + 1

    def test_entropy_only_between_none_and_deflate(self):
        """The spectrum point this codec exists to provide."""
        import zlib

        from repro.sdgen.chunks import TextChunk

        text = TextChunk().generate(np.random.default_rng(5), 16384)
        huff = len(huffman_compress(text))
        deflate = len(zlib.compress(text, 6))
        assert deflate < huff < len(text)

    def test_beats_shannon_bound_never(self):
        """Output >= H(X) * n bits (entropy optimality sanity check)."""
        from repro.compression.estimator import byte_entropy

        data = (b"aab" * 1000)[:2048]
        out = huffman_compress(data)
        lower_bound_bytes = byte_entropy(data) * len(data) / 8
        assert len(out) >= lower_bound_bytes

    def test_near_optimal_for_dyadic_distribution(self):
        # p = 1/2, 1/4, 1/8, 1/8: Huffman is exactly optimal (1.75 bits/sym).
        data = b"a" * 512 + b"b" * 256 + b"c" * 128 + b"d" * 128
        out = huffman_compress(data)
        bitstream = len(out) - 1 - 4 - 128
        assert bitstream == pytest.approx(1024 * 1.75 / 8, abs=2)


class TestInternals:
    def test_code_lengths_single_symbol(self):
        lengths = _code_lengths(b"aaaa")
        assert lengths[ord("a")] == 1
        assert sum(1 for x in lengths if x) == 1

    def test_kraft_inequality(self):
        lengths = _code_lengths(open(__file__, "rb").read())
        assert lengths is not None
        kraft = sum(2.0 ** -l for l in lengths if l > 0)
        assert kraft <= 1.0 + 1e-9

    def test_canonical_codes_prefix_free(self):
        lengths = _code_lengths(b"abracadabra" * 50)
        codes = _canonical_codes(lengths)
        used = [(c, l) for c, l in codes if l > 0]
        for i, (c1, l1) in enumerate(used):
            for c2, l2 in used[i + 1 :]:
                if l1 <= l2:
                    assert (c2 >> (l2 - l1)) != c1
                else:
                    assert (c1 >> (l1 - l2)) != c2


class TestErrors:
    def test_empty_stream(self):
        with pytest.raises(CodecError):
            huffman_decompress(b"")

    def test_unknown_mode(self):
        with pytest.raises(CodecError):
            huffman_decompress(bytes([9]))

    def test_truncated_header(self):
        with pytest.raises(CodecError):
            huffman_decompress(bytes([1, 0, 0]))

    def test_truncated_bitstream(self):
        comp = huffman_compress(b"hello world, hello huffman" * 20)
        assert comp[0] == 1
        with pytest.raises(CodecError):
            huffman_decompress(comp[:-3])

    def test_size_mismatch(self):
        comp = huffman_compress(b"some text some text some text")
        with pytest.raises(CodecError):
            huffman_decompress(comp, 5)


class TestPropertyBased:
    @given(st.binary(max_size=2048))
    @settings(max_examples=150, deadline=None)
    def test_round_trip_arbitrary(self, data):
        assert huffman_decompress(huffman_compress(data), len(data)) == data

    @given(st.binary(min_size=1, max_size=8), st.integers(min_value=1, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_skewed(self, alphabet, n):
        data = (alphabet * n)[: n * len(alphabet)]
        assert huffman_decompress(huffman_compress(data), len(data)) == data

    @given(st.binary(max_size=1024))
    @settings(max_examples=100, deadline=None)
    def test_never_expands_beyond_one_byte(self, data):
        assert len(huffman_compress(data)) <= len(data) + 1
