"""End-to-end data-integrity tests: everything written reads back bit-exact.

These replays run with ``verify_reads`` on, so every read decompresses
the stored payload with the *real* codec and compares it against the
expected content — through policy selection, the gate, the 75 % rule,
merging, size classes, mapping overlays, the FTL and (for the array
case) RAIS5 distribution.
"""

import pytest

from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice
from repro.core.policy import ElasticPolicy, FixedPolicy, NativePolicy
from repro.flash.geometry import x25e_like
from repro.flash.raid import RAIS5
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import Trace
from repro.traces.synthetic import BurstModel, SyntheticTraceGenerator, WorkloadParams


def verified_device(sim, policy, backend=None, sd=True):
    if backend is None:
        backend = SimulatedSSD(sim, geometry=x25e_like(64))
    content = ContentStore(ENTERPRISE_MIX, pool_blocks=64, seed=9)
    cfg = EDCConfig(
        sd_enabled=sd, store_payloads=True, verify_reads=True
    )
    return EDCBlockDevice(sim, backend, policy, content, cfg)


def mixed_trace(n=600, seed=0):
    params = WorkloadParams(
        name="mix",
        read_ratio=0.4,
        size_dist=((4096, 0.5), (8192, 0.3), (16384, 0.2)),
        write_seq_prob=0.5,
        burst=BurstModel(
            on_iops=400.0, off_iops=20.0, on_duration_mean=0.5, off_duration_mean=2.0
        ),
        address_space=1 << 22,  # 4 MB: heavy overwrite churn
    )
    return SyntheticTraceGenerator(params, seed=seed).generate(max_requests=n)


def replay(trace, policy, sd=True, rais=False):
    sim = Simulator()
    if rais:
        devices = [
            SimulatedSSD(sim, name=f"ssd{i}", geometry=x25e_like(32)) for i in range(5)
        ]
        backend = RAIS5(devices)
    else:
        backend = None
    dev = verified_device(sim, policy, backend, sd)
    for req in trace:
        sim.schedule_at(req.time, lambda r=req: dev.submit(r))
    sim.run()
    dev.flush()
    sim.run()
    assert dev.outstanding == 0
    return dev


POLICIES = [
    ("Native", lambda: NativePolicy()),
    ("Lzf", lambda: FixedPolicy("lzf")),
    ("Gzip", lambda: FixedPolicy("gzip")),
    ("Bzip2", lambda: FixedPolicy("bzip2")),
    ("EDC", lambda: ElasticPolicy()),
]


@pytest.mark.parametrize("name,make", POLICIES, ids=[p[0] for p in POLICIES])
def test_integrity_single_ssd(name, make):
    dev = replay(mixed_trace(500), make(), sd=(name == "EDC"))
    assert dev.read_latency.count > 0  # verification actually exercised reads


def test_integrity_edc_on_rais5():
    dev = replay(mixed_trace(400, seed=3), ElasticPolicy(), rais=True)
    assert dev.read_latency.count > 0


def test_integrity_heavy_overwrite_churn():
    """Small address space: every block overwritten many times; GC active."""
    params = WorkloadParams(
        name="churn",
        read_ratio=0.3,
        size_dist=((4096, 1.0),),
        write_seq_prob=0.2,
        burst=BurstModel(
            on_iops=500.0, off_iops=50.0, on_duration_mean=1.0, off_duration_mean=1.0
        ),
        address_space=1 << 20,  # 1 MB = 256 blocks only
    )
    trace = SyntheticTraceGenerator(params, seed=5).generate(max_requests=1500)
    dev = replay(trace, ElasticPolicy())
    assert dev.stats.writes > 0


def test_integrity_merged_runs_with_partial_reads():
    """Write sequential runs (merged), then read individual blocks back."""
    from repro.traces.model import IORequest

    reqs = []
    t = 0.0
    for base in range(0, 64, 8):
        for i in range(8):
            reqs.append(IORequest(t, "W", (base + i) * 4096, 4096))
            t += 1e-5
        t += 0.05
    # read back each block individually
    for blk in range(64):
        reqs.append(IORequest(t, "R", blk * 4096, 4096))
        t += 1e-3
    dev = replay(Trace("merged", reqs), ElasticPolicy())
    assert dev.stats.merged_runs > 0
    assert dev.read_latency.count == 64
