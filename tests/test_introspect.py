"""Tests for the device introspection layer (SMART, waterfall, heat, GC audit)."""

import io
import json

import pytest

from repro.bench.experiments import ReplayConfig, replay
from repro.flash.introspect import (
    SpaceAccountingError,
    SpaceWaterfall,
    ftls_of,
    smart_snapshot,
    space_waterfall,
)
from repro.telemetry.devhealth import (
    NULL_DEVICE_HEALTH,
    DeviceHealth,
    GcEpisode,
    TemperatureMap,
    dump_health_json,
    render_heatmap,
    render_smart,
    render_waterfall,
)
from repro.traces.workloads import make_workload

PAPER_TRACES = ["Fin1", "Fin2", "Usr_0", "Prxy_0"]


def _replay_with_health(trace_name, scheme="EDC", cfg=None, max_requests=600,
                        **health_kw):
    trace = make_workload(trace_name, max_requests=max_requests)
    health = DeviceHealth(**health_kw)
    captured = {}
    replay(trace, scheme, cfg=cfg, health=health,
           on_built=lambda sim, dev, backend, devices: captured.update(
               dev=dev, sim=sim))
    return health, captured["dev"], captured["sim"]


# ----------------------------------------------------------------------
# space waterfall
# ----------------------------------------------------------------------
class TestWaterfallConservation:
    @pytest.mark.parametrize("trace_name", PAPER_TRACES)
    def test_conserves_on_paper_traces(self, trace_name):
        """The acceptance gate: waterfall sums exactly on all four traces."""
        health, dev, _ = _replay_with_health(trace_name)
        wf = health.waterfall()
        wf.verify(eps=1e-6)
        assert wf.ftl_exact
        assert wf.ftl_residual_bytes == 0
        assert wf.logical_bytes > 0
        assert wf.realized_ratio > 1.0  # compression won space

    def test_conserves_on_array_backend(self):
        cfg = ReplayConfig(backend="rais5")
        health, dev, _ = _replay_with_health("Fin1", cfg=cfg)
        wf = health.waterfall()
        wf.verify()
        # Parity bytes live in the FTLs but not in the allocator's slots.
        assert not wf.ftl_exact
        assert wf.ftl_residual_bytes > 0

    def test_stages_walk_to_effective_physical(self):
        health, _, _ = _replay_with_health("Fin2")
        wf = health.waterfall()
        stages = wf.stages()
        assert stages[0].name == "logical"
        assert stages[0].cumulative == wf.logical_bytes
        assert stages[-1].name == "retired"
        assert stages[-1].cumulative == wf.effective_physical_bytes
        # compression stage is a saving (negative delta)
        comp = next(s for s in stages if s.name == "compression")
        assert comp.delta == wf.payload_bytes - wf.logical_bytes
        assert comp.delta < 0

    def test_slack_split_by_size_class(self):
        health, dev, _ = _replay_with_health("Usr_0")
        wf = health.waterfall()
        fractions = {c.fraction for c in dev.allocator.classes}
        assert set(wf.slack_by_class) == fractions
        assert sum(wf.slack_by_class.values()) == wf.slack_bytes
        assert sum(wf.slots_by_class.values()) > 0
        # 100% slots carry no rounding slack by construction.
        assert wf.slack_by_class[1.0] == 0

    def test_verify_detects_counter_drift(self):
        health, _, _ = _replay_with_health("Fin1", max_requests=200)
        wf = health.waterfall()
        bad = SpaceWaterfall(
            **{
                **{f: getattr(wf, f) for f in wf.__dataclass_fields__},
                "counter_slack_bytes": wf.counter_slack_bytes + 1,
            }
        )
        with pytest.raises(SpaceAccountingError, match="internal_fragmentation"):
            bad.verify()

    def test_render_verifies_before_claiming(self):
        health, _, _ = _replay_with_health("Fin1", max_requests=200)
        wf = health.waterfall()
        assert "conservation verified" in render_waterfall(wf)
        bad = SpaceWaterfall(
            **{
                **{f: getattr(wf, f) for f in wf.__dataclass_fields__},
                "counter_payload_bytes": wf.counter_payload_bytes + 7,
            }
        )
        with pytest.raises(SpaceAccountingError):
            render_waterfall(bad)


# ----------------------------------------------------------------------
# bit-identity: introspection must not perturb the replay
# ----------------------------------------------------------------------
class TestBitIdentity:
    def _digests(self, health):
        captured = {}
        trace = make_workload("Fin1", max_requests=600)
        result = replay(
            trace, "EDC", health=health,
            on_built=lambda sim, dev, backend, devices: captured.update(
                dev=dev),
        )
        dev = captured["dev"]
        return (
            dev.allocator.state_digest(),
            dev.mapping.state_digest(),
            result.n_requests,
            result.mean_response,
        )

    def test_health_replay_bit_identical(self):
        """Acceptance gate: --health must not change a single byte."""
        without = self._digests(None)
        with_health = self._digests(DeviceHealth())
        null = self._digests(NULL_DEVICE_HEALTH)
        assert with_health == without
        assert null == without


# ----------------------------------------------------------------------
# SMART snapshot
# ----------------------------------------------------------------------
class TestSmartSnapshot:
    def test_fields_consistent_with_endurance_model(self):
        from repro.flash.endurance import EnduranceModel

        health, dev, sim = _replay_with_health("Fin1")
        snap = health.smart()
        ftls = ftls_of(dev.distributer.backend)
        assert len(ftls) == 1
        rep = EnduranceModel("SLC").report(ftls[0], sim.now)
        assert snap.total_erases == rep.total_erases
        assert snap.wear_max == rep.max_block_erases
        assert snap.write_amplification == pytest.approx(
            rep.write_amplification
        )
        assert snap.wear_fraction == pytest.approx(rep.wear_fraction)

    def test_histogram_covers_every_in_service_block(self):
        health, dev, _ = _replay_with_health("Fin2")
        snap = health.smart()
        ftl = ftls_of(dev.distributer.backend)[0]
        geo = ftl.geometry
        assert sum(snap.erase_histogram.values()) == (
            geo.nblocks - ftl.retired_blocks
        )
        assert snap.wear_p50 <= snap.wear_p95 <= snap.wear_max

    def test_wa_split_sums_to_written_bytes(self):
        health, dev, _ = _replay_with_health("Fin1")
        snap = health.smart()
        ftl = ftls_of(dev.distributer.backend)[0]
        split = snap.wa_split()
        assert sum(split.values()) == (
            ftl.stats.host_bytes + ftl.stats.relocated_bytes
        )
        assert split["host"] > 0
        assert split["gc"] == ftl.collector.stats.moved_bytes

    def test_validation(self):
        health, dev, _ = _replay_with_health("Fin1", max_requests=100)
        with pytest.raises(ValueError):
            smart_snapshot(dev, -1.0)
        with pytest.raises(ValueError):
            smart_snapshot(dev, 1.0, cell_type="QLC")

    def test_render_smart_mentions_key_numbers(self):
        health, _, _ = _replay_with_health("Fin1", max_requests=200)
        text = render_smart(health.smart())
        assert "SMART (SLC" in text
        assert "WA " in text
        assert "DWPD" in text


# ----------------------------------------------------------------------
# temperature map
# ----------------------------------------------------------------------
class TestTemperatureMap:
    def test_ewma_decay_math(self):
        heat = TemperatureMap(region_bytes=1 << 20, half_life=2.0)
        heat.touch(0.0, "W", 0, 4.0)
        assert heat.heat_at(0, 0.0) == pytest.approx(4.0)
        # one half-life later the heat has halved
        assert heat.heat_at(0, 2.0) == pytest.approx(2.0)
        # touching again decays the old heat first, then adds
        heat.touch(2.0, "W", 100, 1.0)  # same region 0
        assert heat.heat_at(0, 2.0) == pytest.approx(3.0)

    def test_read_write_tracked_separately(self):
        heat = TemperatureMap()
        heat.touch(0.0, "W", 0, 2.0)
        heat.touch(0.0, "R", 0, 5.0)
        assert heat.heat_at(0, 0.0, "W") == pytest.approx(2.0)
        assert heat.heat_at(0, 0.0, "R") == pytest.approx(5.0)

    def test_regions_partition_lba_space(self):
        heat = TemperatureMap(region_bytes=1 << 20)
        assert heat.region_of(0) == 0
        assert heat.region_of((1 << 20) - 1) == 0
        assert heat.region_of(1 << 20) == 1

    def test_hottest_combined_and_per_op(self):
        heat = TemperatureMap()
        heat.touch(0.0, "W", 0, 1.0)
        heat.touch(0.0, "W", 1 << 20, 10.0)
        heat.touch(0.0, "R", 0, 5.0)
        assert heat.hottest(0.0, n=1) == [(1, 10.0)]  # region 1 wins on W
        combined = dict(heat.hottest(0.0, n=2))
        assert combined[0] == pytest.approx(6.0)  # 1 W + 5 R
        assert heat.hottest(0.0, n=1, op="R") == [(0, 5.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            TemperatureMap(region_bytes=0)
        with pytest.raises(ValueError):
            TemperatureMap(half_life=0.0)

    def test_fed_from_replay_monitor(self):
        health, _, sim = _replay_with_health("Fin1", max_requests=400)
        assert health.heat.touches > 0
        assert health.heat.max_region >= 0
        assert health.heat.hottest(sim.now)
        text = render_heatmap(health.heat, sim.now)
        assert "LBA temperature map" in text
        assert "hottest:" in text

    def test_empty_heatmap_renders(self):
        heat = TemperatureMap()
        assert "no accesses" in render_heatmap(heat, 0.0)


# ----------------------------------------------------------------------
# GC episode audit
# ----------------------------------------------------------------------
class TestGcAudit:
    def _gc_heavy(self):
        """Small device + tight fold so frontier refills force GC."""
        cfg = ReplayConfig(capacity_mb=16, fold_fraction=0.5)
        return _replay_with_health("Fin1", cfg=cfg, max_requests=12000)

    def test_episodes_recorded_with_low_free_trigger(self):
        health, dev, _ = self._gc_heavy()
        assert health.episodes_total > 0
        assert health.episodes_by_trigger.get("low_free", 0) > 0
        ftl = ftls_of(dev.distributer.backend)[0]
        assert health.episodes_total == ftl.collector.stats.collections

    def test_episode_fields(self):
        health, dev, _ = self._gc_heavy()
        ftl = ftls_of(dev.distributer.backend)[0]
        block_bytes = ftl.geometry.block_bytes
        for ep in health.episodes:
            assert ep.trigger == "low_free"
            assert ep.stream >= 0
            assert 0.0 <= ep.efficiency <= 1.0
            assert ep.efficiency == pytest.approx(
                ep.reclaimed_bytes / block_bytes
            )
            assert ep.erase_count >= 1
        assert health.moved_bytes_total == ftl.collector.stats.moved_bytes
        assert health.reclaimed_bytes_total == (
            ftl.collector.stats.reclaimed_bytes
        )

    def test_gc_table_renders(self):
        health, _, _ = self._gc_heavy()
        table = health.gc_table(last=4)
        assert "GC episode audit" in table
        assert "low_free" in table

    def test_probe_gate_disables_gc_audit(self):
        from repro.telemetry.probes import ProbeRegistry

        probes = ProbeRegistry()
        probes.disable("gc")
        cfg = ReplayConfig(capacity_mb=16, fold_fraction=0.5)
        health, dev, _ = _replay_with_health(
            "Fin1", cfg=cfg, max_requests=12000, probes=probes
        )
        ftl = ftls_of(dev.distributer.backend)[0]
        assert ftl.collector.stats.collections > 0  # GC still ran...
        assert health.episodes_total == 0           # ...but unrecorded
        assert health.heat.touches > 0              # heat feed unaffected

    def test_retirement_episode(self):
        from repro.flash.ftl import ExtentFTL
        from repro.flash.geometry import NandGeometry
        from repro.sim.engine import Simulator

        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=16,
                           op_ratio=0.25)
        ftl = ExtentFTL(geo)
        ftl.write("a", 4096)

        class _Backend:
            pass

        backend = _Backend()
        backend.ftl = ftl

        health = DeviceHealth()
        health.sim = Simulator()
        health._attach_ftl(ftl)
        ftl.retire_block(0)
        assert health.episodes_total == 1
        ep = health.episodes[0]
        assert ep.trigger == "retire"
        assert ep.stream == -1
        assert ep.efficiency == 0.0


# ----------------------------------------------------------------------
# composition: render, dump, dashboard, cluster rollups
# ----------------------------------------------------------------------
class TestComposition:
    def test_full_render_and_json_dump(self):
        health, _, _ = _replay_with_health("Fin1")
        text = health.render()
        for marker in ("SMART (", "space waterfall", "GC episode audit",
                       "LBA temperature map"):
            assert marker in text
        fp = io.StringIO()
        dump_health_json(health, fp)
        payload = json.loads(fp.getvalue())
        assert set(payload) == {"smart", "space", "gc_episodes", "gc_totals",
                                "heat"}
        space = payload["space"]
        assert space["stages"][-1]["cumulative"] == (
            space["effective_physical_bytes"]
        )
        assert payload["heat"]["touches"] == health.heat.touches

    def test_unbound_health_raises(self):
        health = DeviceHealth()
        with pytest.raises(RuntimeError):
            health.smart()
        with pytest.raises(RuntimeError):
            health.waterfall()

    def test_null_health_is_inert(self):
        assert NULL_DEVICE_HEALTH.enabled is False
        assert NULL_DEVICE_HEALTH.bind_device(object()) is None

    def test_dashboard_health_panels(self):
        from repro.telemetry.dashboard import render_dashboard
        from repro.telemetry.timeseries import TimeSeriesSampler

        trace = make_workload("Fin1", max_requests=400)
        sampler = TimeSeriesSampler(interval=0.05)
        health = DeviceHealth()
        replay(trace, "EDC", sampler=sampler, health=health)
        out = render_dashboard(sampler, health=health)
        assert "── smart " in out
        assert "── space " in out
        assert "── space waterfall " in out
        assert "── temperature map " in out
        # without health the dashboard is unchanged
        plain = render_dashboard(sampler)
        assert "space waterfall" not in plain

    def test_standard_metrics_expose_health_families(self):
        from repro.telemetry.exposition import render_exposition
        from repro.telemetry.timeseries import TimeSeriesSampler

        trace = make_workload("Fin1", max_requests=400)
        sampler = TimeSeriesSampler(interval=0.05)
        health = DeviceHealth()
        replay(trace, "EDC", sampler=sampler, health=health)
        names = set(sampler.series)
        assert "smart.write_amplification" in names
        assert "space.realized_ratio" in names
        assert any(n.startswith("space.slack_by_class.") for n in names)
        assert "heat.regions" in names
        text = render_exposition(sampler=sampler)
        assert "smart_write_amplification" in text.replace("edc_ts_", "")

    def test_cluster_rollups(self):
        from repro.bench.cluster import run_cluster

        report = run_cluster(n_shards=2, n_tenants=2, max_requests=80)
        shards = report.outcome.shards
        assert shards
        for shard in shards.values():
            assert shard.smart is not None
            assert "wear_max" in shard.smart
            assert shard.smart["realized_ratio"] > 0
        assert "wear_max" in report.render()
