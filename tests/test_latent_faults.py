"""Tests for the latent-error models (retention loss, read disturb).

Locks the contracts the media scrubber depends on: schema-versioned
plan serialisation with precise unknown-key errors, per-block CRC
detection of *every* content-changing single-bit flip in a stored
compressed payload (across all registered codecs), corruption surfacing
as a counted :class:`IntegrityError` on the host read path (never a
``ReadFaultError`` retry storm), deterministic seeded draws, and the
no-op guarantee: a plan without latent fields arms no models and draws
no randomness.
"""

import pytest

from repro.compression.codec import default_registry
from repro.core.device import IntegrityAssertionError, IntegrityError
from repro.faults import FaultPlan
from repro.faults.latent import (
    LatentErrorModel,
    LatentStats,
    ReadDisturb,
    RetentionLoss,
)
from repro.recovery.formats import block_crcs

RETENTION = {"rate_per_s": 0.01, "age_factor": 0.5, "check_interval_s": 0.05}
DISTURB = {"reads_per_trigger": 256, "corrupt_prob": 0.02}


def latent_plan(seed=7, **kw):
    kw.setdefault("retention", dict(RETENTION))
    kw.setdefault("read_disturb", dict(DISTURB))
    return FaultPlan(seed=seed, **kw)


# ----------------------------------------------------------------------
# IntegrityError is a real exception (satellite: subclassing fix)
# ----------------------------------------------------------------------
class TestIntegrityErrorClass:
    def test_is_exception_not_assertion(self):
        assert issubclass(IntegrityError, Exception)
        assert not issubclass(IntegrityError, AssertionError)

    def test_deprecated_alias_preserved(self):
        assert IntegrityAssertionError is IntegrityError

    def test_survives_pytest_style_assertion_rewriting(self):
        # ``except AssertionError`` (or a bare ``assert``-oriented
        # handler) must NOT swallow an integrity failure.
        with pytest.raises(Exception) as exc_info:
            raise IntegrityError("crc mismatch")
        assert not isinstance(exc_info.value, AssertionError)


# ----------------------------------------------------------------------
# plan serialisation (satellite: round-trip + precise unknown keys)
# ----------------------------------------------------------------------
class TestLatentPlanSerialisation:
    def test_round_trips_through_json(self, tmp_path):
        plan = latent_plan()
        path = str(tmp_path / "plan.json")
        plan.to_json(path)
        back = FaultPlan.from_json(path)
        assert back.retention == RetentionLoss(**RETENTION)
        assert back.read_disturb == ReadDisturb(**DISTURB)
        assert back == plan

    def test_dicts_coerced_to_models(self):
        plan = latent_plan()
        assert isinstance(plan.retention, RetentionLoss)
        assert isinstance(plan.read_disturb, ReadDisturb)

    def test_unknown_retention_key_is_precise(self):
        with pytest.raises(ValueError, match=r"unknown retention keys \['rate'\]"):
            FaultPlan(seed=1, retention={"rate": 0.5})

    def test_unknown_read_disturb_key_is_precise(self):
        with pytest.raises(
            ValueError, match=r"unknown read-disturb keys \['reads'\]"
        ):
            FaultPlan(seed=1, read_disturb={"reads": 10})

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError, match="retention must be"):
            FaultPlan(seed=1, retention=[1, 2])

    @pytest.mark.parametrize("kw", [
        {"rate_per_s": -0.1},
        {"age_factor": -1.0},
        {"wear_factor": -1.0},
        {"check_interval_s": 0.0},
        {"min_age_s": -1.0},
    ])
    def test_retention_validation(self, kw):
        with pytest.raises(ValueError):
            RetentionLoss(**kw)

    @pytest.mark.parametrize("kw", [
        {"reads_per_trigger": 0},
        {"corrupt_prob": -0.1},
        {"corrupt_prob": 1.5},
        {"wear_factor": -1.0},
    ])
    def test_read_disturb_validation(self, kw):
        with pytest.raises(ValueError):
            ReadDisturb(**kw)

    def test_latent_fields_break_is_empty(self):
        assert FaultPlan.empty().is_empty
        assert not FaultPlan(seed=0, retention=RETENTION).is_empty
        assert not FaultPlan(seed=0, read_disturb=DISTURB).is_empty


# ----------------------------------------------------------------------
# bit-flip detection property (satellite: every flip caught by CRC)
# ----------------------------------------------------------------------
def _payload(n=256):
    """Deterministic, mildly compressible content (text + structure)."""
    chunk = b"the quick brown fox jumps over the lazy dog 0123456789 "
    data = (chunk * (n // len(chunk) + 1))[:n]
    return bytes(b ^ (i % 7) for i, b in enumerate(data))


@pytest.mark.parametrize("name", default_registry().names())
def test_every_bit_flip_is_caught_or_harmless(name):
    """Flip each bit of the stored compressed payload; the read path's
    per-block CRC must catch every flip that changes the content.

    Three legal outcomes per flip: the codec rejects the payload
    (surfaced as an ``IntegrityError`` by the device), the decompressed
    content differs (the per-block CRC mismatch catches it), or the
    flip lands in don't-care bits and the content is bit-identical
    (harmless — nothing to catch).  Silent *content* corruption with a
    matching CRC is the only failure, and must never happen.
    """
    codec = default_registry().get(name)
    data = _payload()
    reference = block_crcs(data, 256)
    stored = codec.compress(data)
    detected = harmless = 0
    for bit in range(len(stored) * 8):
        flipped = bytearray(stored)
        flipped[bit // 8] ^= 1 << (bit % 8)
        try:
            out = codec.decompress(bytes(flipped), original_size=len(data))
        except Exception as exc:
            assert not isinstance(exc, AssertionError)
            detected += 1
            continue
        if len(out) != len(data) or block_crcs(out, 256) != reference:
            detected += 1  # CRC catches the content change
        else:
            assert out == data, (
                f"{name}: bit {bit} silently corrupted content past the CRC"
            )
            harmless += 1
    assert detected + harmless == len(stored) * 8
    if name != "none":  # raw passthrough: every flip changes content
        assert detected > 0


def test_none_codec_flips_always_change_content():
    codec = default_registry().get("none")
    data = _payload()
    stored = codec.compress(data)
    for bit in (0, 7, len(stored) * 8 - 1):
        flipped = bytearray(stored)
        flipped[bit // 8] ^= 1 << (bit % 8)
        out = codec.decompress(bytes(flipped), original_size=len(data))
        assert block_crcs(out, 256) != block_crcs(data, 256)


# ----------------------------------------------------------------------
# model mechanics
# ----------------------------------------------------------------------
class TestLatentModel:
    def _model(self, **kw):
        from repro.flash.geometry import x25e_like
        from repro.flash.ssd import SimulatedSSD
        from repro.sim.engine import Simulator

        sim = Simulator()
        ssd = SimulatedSSD(sim, name="ssd0", geometry=x25e_like(16))
        model = LatentErrorModel(7, "ssd0", sim, ssd.ftl, **kw)
        ssd.latent = model
        return sim, ssd, model

    def test_write_and_trim_clear_marks(self):
        sim, ssd, model = self._model()
        ssd.submit_write(0, 4096, key=1)
        sim.run()
        model._corrupt.add(1)
        model.stats.corrupted_extents += 1
        ssd.submit_write(0, 4096, key=1)
        sim.run()
        assert model.corrupt_count == 0
        assert model.stats.cleaned_extents == 1
        model._corrupt.add(1)
        ssd.trim(1)
        assert model.corrupt_count == 0

    def test_prune_dead_drops_vanished_extents(self):
        sim, ssd, model = self._model()
        ssd.submit_write(0, 4096, key=1)
        sim.run()
        model._corrupt.add(1)          # live: stays
        model._corrupt.add(999)        # never written: pruned
        assert model.prune_dead() == 1
        assert model.is_corrupt(1)
        assert not model.is_corrupt(999)

    def test_quiesce_stops_new_corruption(self):
        sim, ssd, model = self._model(
            read_disturb=ReadDisturb(reads_per_trigger=1, corrupt_prob=1.0),
        )
        ssd.submit_write(0, 4096, key=1)
        ssd.submit_write(4096, 4096, key=2)
        sim.run()
        model.quiesce()
        for _ in range(8):
            ssd.submit_read(0, 4096, key=1)
        sim.run()
        assert model.stats.disturb_triggers == 0
        assert model.corrupt_count == 0

    def test_related_and_sorted_accessors(self):
        sim, ssd, model = self._model()
        model._corrupt.update({(5, 1), (5, 0), ("P", 9), ("P", 2), 3})
        assert model.has_corrupt_related(5)
        assert model.has_corrupt_related(3)
        assert not model.has_corrupt_related(4)
        assert sorted(model.corrupt_keys_of(5)) == [(5, 0), (5, 1)]
        assert model.corrupt_parity_rows() == [2, 9]
        assert model.corrupt_data_keys() == [3, (5, 0), (5, 1)]

    def test_stats_fields_complete(self):
        stats = LatentStats()
        assert set(stats.as_dict()) == set(LatentStats.FIELDS)


# ----------------------------------------------------------------------
# harness integration: corruption surfaces as IntegrityError
# ----------------------------------------------------------------------
class TestLatentChaos:
    def _hot_plan(self):
        return FaultPlan(
            seed=3,
            retention={
                "rate_per_s": 1.0, "age_factor": 1.0, "check_interval_s": 0.02,
            },
        )

    def test_host_reads_hit_corrupt_media_without_scrub(self):
        from repro.bench.chaos import run_chaos

        rep = run_chaos(self._hot_plan(), duration=3.0)
        assert rep.verdict == "CORRUPTION"
        assert rep.exit_code == 3
        assert rep.corrupt_reads > 0          # host saw IntegrityError
        assert rep.faults["read_faults"] == 0  # ...not ReadFaultError
        assert rep.residual_corrupt > 0
        assert rep.latent["retention_events"] > 0
        assert rep.latent["corrupted_extents"] > 0

    def test_latent_runs_are_deterministic(self):
        from repro.bench.chaos import run_chaos

        a = run_chaos(self._hot_plan(), duration=2.0)
        b = run_chaos(self._hot_plan(), duration=2.0)
        assert a.latent == b.latent
        assert a.corrupt_reads == b.corrupt_reads
        assert a.residual_corrupt == b.residual_corrupt
        assert a.verdict == b.verdict

    def test_plan_without_latent_arms_nothing(self):
        from repro.bench.experiments import ReplayConfig, replay
        from repro.traces.workloads import make_workload

        ctx = {}
        replay(
            make_workload("Fin1", duration=1.0), "EDC",
            ReplayConfig(backend="rais5"),
            fault_plan=FaultPlan(seed=1, read_fault_prob=0.001),
            on_built=lambda sim, device, backend, devices: ctx.update(
                backend=backend, devices=devices
            ),
        )
        assert not getattr(ctx["backend"], "latent_models", None)
        assert all(
            getattr(ssd, "latent", None) is None for ssd in ctx["devices"]
        )
