"""Tests for the from-scratch LZ4 block codec."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.codec import CodecError
from repro.compression.lz4 import LZ4Codec, lz4_compress, lz4_decompress


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"short",
            b"twelve bytes",
            b"thirteen bytes!",
            b"abcd" * 1000,
            bytes(4096),
            bytes(range(256)) * 8,
        ],
        ids=["empty", "one", "short", "mflimit", "just-above", "periodic", "zeros", "ramp"],
    )
    def test_round_trip(self, data):
        assert lz4_decompress(lz4_compress(data), len(data)) == data

    def test_round_trip_random(self):
        data = os.urandom(10000)
        assert lz4_decompress(lz4_compress(data), len(data)) == data

    def test_round_trip_without_size(self):
        data = b"repetition repetition repetition " * 64
        assert lz4_decompress(lz4_compress(data)) == data

    def test_codec_class(self):
        c = LZ4Codec()
        data = b"block format " * 333
        assert c.decompress(c.compress(data), len(data)) == data

    def test_long_matches_use_length_extension(self):
        data = b"Z" * 100_000
        comp = lz4_compress(data)
        assert lz4_decompress(comp, len(data)) == data
        assert len(comp) < 500

    def test_long_literal_runs_use_length_extension(self):
        data = os.urandom(5000)  # no matches -> literal run > 15
        assert lz4_decompress(lz4_compress(data), len(data)) == data


class TestFormatConstraints:
    def test_empty_block_is_single_zero_token(self):
        assert lz4_compress(b"") == b"\x00"

    def test_small_inputs_are_literal_only(self):
        # Below MFLIMIT (12), no matches are allowed.
        data = b"aaaaaaaaaaa"  # 11 bytes of 'a'
        out = lz4_compress(data)
        assert out == bytes([11 << 4]) + data

    def test_last_five_bytes_are_literals(self):
        # Even highly compressible tails must end in >= 5 literals.
        data = b"ab" * 100
        out = lz4_compress(data)
        # The final bytes of the stream are raw input bytes.
        assert out[-5:] == data[-5:]

    def test_decode_hand_built_sequence(self):
        # token: 4 literals, match len 4 (code 0); literals 'abcd'; offset 4.
        stream = bytes([(4 << 4) | 0]) + b"abcd" + bytes([4, 0]) + bytes([5 << 4]) + b"tail!"
        assert lz4_decompress(stream) == b"abcdabcdtail!"

    def test_overlap_copy(self):
        # 1 literal 'x', match offset 1 len 8 -> run of 9 'x', tail literals.
        stream = bytes([(1 << 4) | 4]) + b"x" + bytes([1, 0]) + bytes([5 << 4]) + b"ABCDE"
        assert lz4_decompress(stream) == b"x" * 9 + b"ABCDE"


class TestErrors:
    def test_empty_input_rejected(self):
        with pytest.raises(CodecError):
            lz4_decompress(b"")

    def test_zero_offset_rejected(self):
        stream = bytes([(1 << 4) | 0]) + b"a" + bytes([0, 0])
        with pytest.raises(CodecError):
            lz4_decompress(stream)

    def test_offset_before_start_rejected(self):
        stream = bytes([(1 << 4) | 0]) + b"a" + bytes([9, 0])
        with pytest.raises(CodecError):
            lz4_decompress(stream)

    def test_truncated_literals_rejected(self):
        with pytest.raises(CodecError):
            lz4_decompress(bytes([8 << 4]) + b"ab")

    def test_size_mismatch_detected(self):
        comp = lz4_compress(b"some data here")
        with pytest.raises(CodecError):
            lz4_decompress(comp, 5)


class TestCompressionBehaviour:
    def test_compresses_redundant_data(self):
        data = b"0123456789abcdef" * 512
        assert len(lz4_compress(data)) < len(data) // 4

    def test_incompressible_overhead_is_small(self):
        data = os.urandom(4096)
        out = lz4_compress(data)
        assert len(out) <= len(data) + 32

    def test_deterministic(self):
        data = b"stable output " * 200
        assert lz4_compress(data) == lz4_compress(data)


class TestPropertyBased:
    @given(st.binary(max_size=2048))
    @settings(max_examples=200, deadline=None)
    def test_round_trip_arbitrary(self, data):
        assert lz4_decompress(lz4_compress(data), len(data)) == data

    @given(st.binary(min_size=1, max_size=32), st.integers(min_value=1, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_repeated(self, pattern, reps):
        data = pattern * reps
        assert lz4_decompress(lz4_compress(data), len(data)) == data

    @given(st.lists(st.sampled_from([b"\x00" * 64, b"abc", os.urandom(64)]), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_mixed_segments(self, parts):
        data = b"".join(parts)
        assert lz4_decompress(lz4_compress(data), len(data)) == data
