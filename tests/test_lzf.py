"""Tests for the from-scratch LZF codec, including wire-format details."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.codec import CodecError
from repro.compression.lzf import LZFCodec, lzf_compress, lzf_decompress


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"ab",
            b"abc",
            b"aaaa",
            b"abcabcabcabc",
            b"the quick brown fox " * 50,
            bytes(4096),
            bytes(range(256)) * 16,
        ],
        ids=["empty", "one", "two", "three", "rle4", "periodic", "text", "zeros", "ramp"],
    )
    def test_round_trip(self, data):
        assert lzf_decompress(lzf_compress(data), len(data)) == data

    def test_round_trip_random(self):
        data = os.urandom(8192)
        assert lzf_decompress(lzf_compress(data), len(data)) == data

    def test_round_trip_without_size_hint(self):
        data = b"hello world " * 100
        assert lzf_decompress(lzf_compress(data)) == data

    def test_codec_class_round_trip(self):
        c = LZFCodec()
        data = b"x" * 1000 + os.urandom(100)
        assert c.decompress(c.compress(data), len(data)) == data

    def test_long_match_beyond_264(self):
        # Matches are capped at 264 bytes; longer repeats need several refs.
        data = b"A" * 5000
        comp = lzf_compress(data)
        assert lzf_decompress(comp, len(data)) == data
        assert len(comp) < 200

    def test_far_reference_beyond_8k_window(self):
        # Distance > 8192 cannot be referenced; data must still round-trip.
        chunk = os.urandom(64)
        data = chunk + os.urandom(9000) + chunk
        assert lzf_decompress(lzf_compress(data), len(data)) == data


class TestCompressionBehaviour:
    def test_compresses_redundant_data(self):
        data = b"abcdefgh" * 512
        assert len(lzf_compress(data)) < len(data) // 4

    def test_random_data_expands_slightly(self):
        data = os.urandom(4096)
        out = lzf_compress(data)
        assert len(data) < len(out) <= len(data) + len(data) // 16 + 64

    def test_empty_input_empty_output(self):
        assert lzf_compress(b"") == b""
        assert lzf_decompress(b"") == b""

    def test_deterministic(self):
        data = b"determinism matters " * 100
        assert lzf_compress(data) == lzf_compress(data)


class TestWireFormat:
    def test_literal_run_encoding(self):
        # 3 incompressible bytes -> one control byte (len-1=2) + literals.
        out = lzf_compress(b"xyz")
        assert out == b"\x02xyz"

    def test_literal_runs_split_at_32(self):
        data = os.urandom(33)
        out = lzf_compress(data)
        # 32-byte run (ctrl 31) + 1-byte run (ctrl 0)
        assert out[0] == 31
        assert out[33] == 0

    def test_back_reference_decode(self):
        # literal 'abc', then a reference: len3=1 (match len 3), dist 3.
        stream = bytes([0x02]) + b"abc" + bytes([(1 << 5) | 0x00, 0x02])
        assert lzf_decompress(stream) == b"abcabc"

    def test_overlapping_copy_is_rle(self):
        # 'a' literal then a 5-byte match at distance 1 == run of 'a'.
        stream = bytes([0x00]) + b"a" + bytes([(3 << 5) | 0x00, 0x00])
        assert lzf_decompress(stream) == b"a" * 6

    def test_extended_length_byte(self):
        data = b"B" * 300
        assert lzf_decompress(lzf_compress(data), 300) == data


class TestErrors:
    def test_truncated_literal_run(self):
        with pytest.raises(CodecError):
            lzf_decompress(b"\x05ab")

    def test_truncated_reference(self):
        with pytest.raises(CodecError):
            lzf_decompress(bytes([0x20]))

    def test_reference_before_start(self):
        with pytest.raises(CodecError):
            lzf_decompress(bytes([(1 << 5) | 0x00, 0x09]))

    def test_size_mismatch_detected(self):
        comp = lzf_compress(b"hello")
        with pytest.raises(CodecError):
            lzf_decompress(comp, 999)


class TestPropertyBased:
    @given(st.binary(max_size=2048))
    @settings(max_examples=200, deadline=None)
    def test_round_trip_arbitrary(self, data):
        assert lzf_decompress(lzf_compress(data), len(data)) == data

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_repeated_patterns(self, pattern, reps):
        data = pattern * reps
        assert lzf_decompress(lzf_compress(data), len(data)) == data

    @given(st.binary(max_size=512))
    @settings(max_examples=100, deadline=None)
    def test_output_bounded(self, data):
        # Worst case: one control byte per 32 literals.
        out = lzf_compress(data)
        assert len(out) <= len(data) + len(data) // 32 + 1
