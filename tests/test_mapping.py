"""Tests for the (LBA, Size, Tag) mapping table with overlay semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.mapping import ENTRY_BYTES, MappingEntry, MappingTable


def entry(block, span=1, size=1000, tag=1):
    return MappingEntry(
        lba=block * 4096, size=size, tag=tag, span=span, original_size=span * 4096
    )


class TestMappingEntry:
    def test_valid_entry(self):
        e = MappingEntry(lba=4096, size=1562, tag=3, span=1)
        assert e.is_compressed

    def test_tag_zero_uncompressed(self):
        assert not MappingEntry(lba=0, size=4096, tag=0).is_compressed

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lba=-1, size=1, tag=0),
            dict(lba=0, size=-1, tag=0),
            dict(lba=0, size=1, tag=8),
            dict(lba=0, size=1, tag=-1),
            dict(lba=0, size=1, tag=0, span=0),
            dict(lba=0, size=1, tag=0, original_size=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MappingEntry(**kwargs)


class TestInsertLookup:
    def test_lookup_hits_inside_span(self):
        t = MappingTable()
        eid, _ = t.insert(entry(10, span=3))
        for blk in (10, 11, 12):
            hit = t.lookup(blk * 4096)
            assert hit is not None and hit[0] == eid
        assert t.lookup(13 * 4096) is None
        assert t.lookup(9 * 4096) is None

    def test_lookup_mid_block_offset(self):
        t = MappingTable()
        eid, _ = t.insert(entry(5))
        assert t.lookup(5 * 4096 + 123)[0] == eid

    def test_full_overwrite_reclaims(self):
        t = MappingTable()
        old_id, _ = t.insert(entry(7))
        new_id, shadowed = t.insert(entry(7))
        assert [sid for sid, _ in shadowed] == [old_id]
        assert t.lookup(7 * 4096)[0] == new_id
        assert len(t) == 1

    def test_partial_overwrite_keeps_old_entry(self):
        t = MappingTable()
        run_id, _ = t.insert(entry(0, span=3))
        new_id, shadowed = t.insert(entry(1, span=1))
        assert shadowed == []  # old run still covers blocks 0 and 2
        assert t.lookup(0)[0] == run_id
        assert t.lookup(4096)[0] == new_id
        assert t.lookup(8192)[0] == run_id
        assert t.live_fraction(run_id) == pytest.approx(2 / 3)
        t.check_invariants()

    def test_progressive_shadowing_reclaims_eventually(self):
        t = MappingTable()
        run_id, _ = t.insert(entry(0, span=3))
        assert t.insert(entry(0))[1] == []
        assert t.insert(entry(1))[1] == []
        _, shadowed = t.insert(entry(2))
        assert [sid for sid, _ in shadowed] == [run_id]
        assert t.live_fraction(run_id) == 0.0
        t.check_invariants()

    def test_new_run_shadowing_multiple_entries(self):
        t = MappingTable()
        a, _ = t.insert(entry(0))
        b, _ = t.insert(entry(1))
        c, _ = t.insert(entry(2))
        _, shadowed = t.insert(entry(0, span=3))
        assert {sid for sid, _ in shadowed} == {a, b, c}
        assert len(t) == 1
        t.check_invariants()


class TestRemove:
    def test_remove_single_block_entry(self):
        t = MappingTable()
        eid, _ = t.insert(entry(4))
        reclaimed = t.remove(4 * 4096)
        assert [r[0] for r in reclaimed] == [eid]
        assert t.lookup(4 * 4096) is None

    def test_remove_missing_is_noop(self):
        assert MappingTable().remove(0) == []

    def test_remove_one_block_of_span(self):
        t = MappingTable()
        eid, _ = t.insert(entry(0, span=2))
        assert t.remove(0) == []  # block 1 still resolves to it
        assert t.lookup(0) is None
        assert t.lookup(4096)[0] == eid
        reclaimed = t.remove(4096)
        assert [r[0] for r in reclaimed] == [eid]
        t.check_invariants()


class TestAccounting:
    def test_len_and_covered(self):
        t = MappingTable()
        t.insert(entry(0, span=4))
        t.insert(entry(10))
        assert len(t) == 2
        assert t.covered_blocks() == 5

    def test_metadata_bytes(self):
        t = MappingTable()
        t.insert(entry(0))
        t.insert(entry(1))
        assert t.metadata_bytes == 2 * ENTRY_BYTES

    def test_get_by_id(self):
        t = MappingTable()
        eid, _ = t.insert(entry(3, size=777))
        assert t.get(eid).size == 777
        assert t.get(999) is None

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            MappingTable(block_size=0)


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=1, max_value=6),
            ),
            max_size=150,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_overlay_invariants(self, inserts):
        t = MappingTable()
        for block, span in inserts:
            t.insert(entry(block, span=span))
        t.check_invariants()
        # Every covered block resolves to an entry that spans it.
        for block, span in inserts:
            hit = t.lookup(block * 4096)
            assert hit is not None
            _, e = hit
            start = e.lba // 4096
            assert start <= block < start + e.span

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.booleans()),
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_insert_remove_churn(self, ops):
        t = MappingTable()
        for block, is_remove in ops:
            if is_remove:
                t.remove(block * 4096)
            else:
                t.insert(entry(block))
        t.check_invariants()


class TestCoveredBlocksOf:
    def test_full_coverage(self):
        t = MappingTable()
        eid, _ = t.insert(entry(4, span=3))
        assert t.covered_blocks_of(eid) == [4, 5, 6]

    def test_partial_coverage_after_overwrite(self):
        t = MappingTable()
        eid, _ = t.insert(entry(0, span=4))
        t.insert(entry(1, span=2))  # shadow blocks 1-2
        assert t.covered_blocks_of(eid) == [0, 3]

    def test_unknown_entry(self):
        assert MappingTable().covered_blocks_of(99) == []

    def test_reclaimed_entry(self):
        t = MappingTable()
        eid, _ = t.insert(entry(0))
        t.insert(entry(0))  # fully shadowed
        assert t.covered_blocks_of(eid) == []
