"""Reference-model property tests for the measurement primitives.

Each metric class is checked against a brute-force recomputation over
the same event stream — the strongest form of unit test for stateful
accumulators with expiry/binning logic.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.metrics import TimeSeries, WindowRate


events_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),  # gap to next
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # weight
    ),
    min_size=1,
    max_size=100,
)


class TestWindowRateReference:
    @given(events_strategy, st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=80, deadline=None)
    def test_rate_matches_bruteforce(self, rows, window):
        w = WindowRate(window)
        t = 0.0
        events = []
        for gap, weight in rows:
            t += gap
            events.append((t, weight))
            w.record(t, weight)
        now = t
        expected = sum(wt for et, wt in events if now - window < et <= now) / window
        assert w.rate(now) == pytest.approx(expected)

    @given(events_strategy)
    @settings(max_examples=40, deadline=None)
    def test_rate_after_quiet_period(self, rows):
        w = WindowRate(1.0)
        t = 0.0
        for gap, weight in rows:
            t += gap
            w.record(t, weight)
        assert w.rate(t + 10.0) == 0.0


class TestTimeSeriesReference:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=80,
        ),
        st.floats(min_value=0.25, max_value=4.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bins_match_bruteforce(self, points, width):
        ts = TimeSeries(width)
        for t, v in points:
            ts.add(t, v)
        edges, sums = ts.bins()
        max_idx = max(int(t / width) for t, _ in points)
        expected = np.zeros(max_idx + 1)
        for t, v in points:
            expected[int(t / width)] += v
        assert len(sums) == max_idx + 1
        assert np.allclose(sums, expected)
        assert np.allclose(edges, np.arange(max_idx + 1) * width)

    @given(st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=20, deadline=None)
    def test_rates_are_sums_over_width(self, width):
        ts = TimeSeries(width)
        ts.add(0.0, 3.0)
        _, rates = ts.rates()
        assert rates[0] == pytest.approx(3.0 / width)
