"""Tests for the Workload Monitor (calculated IOPS, §III-D)."""

import pytest

from repro.core.monitor import WorkloadMonitor


class TestPagesOf:
    def test_paper_example_8k_is_two(self):
        """§III-D: 'one 8KB request is traded as two 4KB requests'."""
        assert WorkloadMonitor().pages_of(8192) == 2

    @pytest.mark.parametrize(
        "nbytes,pages",
        [(1, 1), (512, 1), (4096, 1), (4097, 2), (16384, 4), (65536, 16)],
    )
    def test_rounding_up(self, nbytes, pages):
        assert WorkloadMonitor().pages_of(nbytes) == pages

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMonitor().pages_of(0)


class TestCalculatedIops:
    def test_counts_pages_not_requests(self):
        m = WorkloadMonitor(window=1.0)
        m.record(0.1, "W", 8192)
        m.record(0.2, "W", 4096)
        assert m.calculated_iops(0.2) == pytest.approx(3.0)
        assert m.raw_iops(0.2) == pytest.approx(2.0)

    def test_window_expiry(self):
        m = WorkloadMonitor(window=1.0)
        m.record(0.0, "W", 4096)
        m.record(2.0, "W", 4096)
        assert m.calculated_iops(2.0) == pytest.approx(1.0)

    def test_reads_and_writes_both_counted(self):
        m = WorkloadMonitor(window=1.0)
        m.record(0.1, "R", 4096)
        m.record(0.2, "W", 4096)
        assert m.calculated_iops(0.2) == pytest.approx(2.0)

    def test_short_window_reacts_fast(self):
        slow = WorkloadMonitor(window=1.0)
        fast = WorkloadMonitor(window=0.05)
        for i in range(10):
            t = i * 0.005
            slow.record(t, "W", 4096)
            fast.record(t, "W", 4096)
        assert fast.calculated_iops(0.045) > slow.calculated_iops(0.045)

    def test_totals(self):
        m = WorkloadMonitor()
        m.record(0.0, "W", 8192)
        m.record(0.1, "R", 4096)
        assert m.total_requests == 2
        assert m.total_pages == 3


class TestSnapshot:
    def test_snapshot_fields(self):
        m = WorkloadMonitor(window=1.0)
        m.record(0.1, "R", 4096)
        m.record(0.2, "W", 4096)
        m.record(0.3, "R", 8192)
        s = m.snapshot(0.3)
        assert s.time == 0.3
        assert s.calculated_iops == pytest.approx(4.0)
        assert s.raw_iops == pytest.approx(3.0)
        assert s.read_fraction == pytest.approx(2 / 3)

    def test_snapshot_idle(self):
        m = WorkloadMonitor(window=1.0)
        m.record(0.0, "W", 4096)
        s = m.snapshot(5.0)
        assert s.calculated_iops == 0.0
        assert s.read_fraction == 0.0

    def test_snapshot_window_occupancy(self):
        m = WorkloadMonitor(window=1.0, page_size=4096)
        m.record(0.1, "W", 4096)
        m.record(0.2, "W", 8192)
        s = m.snapshot(0.2)
        assert s.window_requests == 2
        assert s.window_pages == pytest.approx(3.0)
        # events sliding out of the window leave the occupancy
        s2 = m.snapshot(1.5)
        assert s2.window_requests == 0
        assert s2.window_pages == 0.0

    def test_snapshot_band_index_without_policy(self):
        m = WorkloadMonitor(window=1.0)
        m.record(0.1, "W", 4096)
        assert m.snapshot(0.1).band_index is None

    def test_snapshot_band_index_with_policy(self):
        from repro.core.policy import ElasticPolicy, NativePolicy

        m = WorkloadMonitor(window=1.0)
        policy = ElasticPolicy()
        s = m.snapshot(0.0, policy=policy)
        assert s.band_index == policy.band_index(s.calculated_iops)
        # a heavy burst lands in a higher band
        for i in range(2000):
            m.record(0.5 + i * 1e-4, "W", 4096)
        s2 = m.snapshot(0.7, policy=policy)
        assert s2.band_index is not None
        assert s2.band_index > s.band_index
        # the pure query must not perturb the policy's own counters
        assert policy.band_counts == [0] * len(policy.bands)
        # policies without a band ladder yield None
        assert m.snapshot(0.7, policy=NativePolicy()).band_index is None

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadMonitor(page_size=0)


class TestClampAndReset:
    def test_stale_timestamp_clamped_to_watermark(self):
        # Completion callbacks can observe a clock slightly behind the
        # last arrival; the sample is clamped forward, not rejected.
        m = WorkloadMonitor(window=10.0)
        m.record(1.0, "W", 4096)
        m.record(0.5, "R", 4096)
        assert m.raw_iops(1.0) == pytest.approx(2 / 10.0)
        s = m.snapshot(1.0)
        assert s.read_fraction == pytest.approx(0.5)

    def test_stale_query_time_clamped(self):
        m = WorkloadMonitor(window=1.0)
        m.record(2.0, "W", 4096)
        # querying at a time before the watermark acts like "now"
        assert m.calculated_iops(1.0) == m.calculated_iops(2.0)

    def test_reset_returns_to_fresh_state(self):
        m = WorkloadMonitor(window=1.0)
        m.record(5.0, "W", 8192)
        m.record(5.5, "R", 4096)
        m.reset()
        assert m.raw_iops(6.0) == 0.0
        assert m.total_requests == 0
        assert m.total_pages == 0
        # the watermark is cleared too: early timestamps valid again
        m.record(0.1, "W", 4096)
        assert m.raw_iops(0.1) == pytest.approx(1.0)

    def test_expiry_is_single_pass(self):
        # many records, then one query far in the future: the window is
        # drained incrementally and sums return to exact zero
        m = WorkloadMonitor(window=1.0)
        for i in range(1000):
            m.record(i * 0.001, "W", 4096)
        assert m.calculated_iops(100.0) == 0.0
        assert m.raw_iops(100.0) == 0.0
        assert m.total_requests == 1000
