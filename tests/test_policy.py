"""Tests for the compression policies (Native / fixed / elastic)."""

import pytest

from repro.core.policy import (
    DEFAULT_BANDS,
    ElasticPolicy,
    FixedPolicy,
    IntensityBand,
    NativePolicy,
)


class TestNative:
    def test_never_compresses(self):
        p = NativePolicy()
        for iops in (0.0, 100.0, 1e6):
            assert p.select_codec(iops) is None

    def test_no_gate(self):
        assert not NativePolicy().uses_gate


class TestFixed:
    def test_always_same_codec(self):
        p = FixedPolicy("lzf")
        for iops in (0.0, 1e6):
            assert p.select_codec(iops) == "lzf"

    def test_label_defaults_to_capitalised(self):
        assert FixedPolicy("gzip").name == "Gzip"
        assert FixedPolicy("bzip2", label="BZ").name == "BZ"

    def test_no_gate(self):
        assert not FixedPolicy("gzip").uses_gate

    def test_empty_codec_rejected(self):
        with pytest.raises(ValueError):
            FixedPolicy("")


class TestElastic:
    def test_default_bands_structure(self):
        """gzip when idle, lzf under load, skip at the top (§III-D)."""
        assert DEFAULT_BANDS[0].codec == "gzip"
        assert DEFAULT_BANDS[1].codec == "lzf"
        assert DEFAULT_BANDS[-1].codec is None
        assert DEFAULT_BANDS[-1].upper_iops == float("inf")

    def test_band_selection(self):
        p = ElasticPolicy(
            (
                IntensityBand(100.0, "gzip"),
                IntensityBand(1000.0, "lzf"),
                IntensityBand(float("inf"), None),
            )
        )
        assert p.select_codec(0.0) == "gzip"
        assert p.select_codec(99.9) == "gzip"
        assert p.select_codec(100.0) == "lzf"
        assert p.select_codec(999.0) == "lzf"
        assert p.select_codec(1000.0) is None
        assert p.select_codec(1e9) is None

    def test_band_counts_and_shares(self):
        p = ElasticPolicy(
            (
                IntensityBand(100.0, "gzip"),
                IntensityBand(float("inf"), "lzf"),
            )
        )
        for iops in (50, 50, 500, 500, 500, 500):
            p.select_codec(iops)
        assert p.band_counts == [2, 4]
        assert p.band_shares() == [pytest.approx(1 / 3), pytest.approx(2 / 3)]

    def test_shares_empty(self):
        assert ElasticPolicy().band_shares() == [0.0, 0.0, 0.0]

    def test_shares_sum_to_one_when_used(self):
        p = ElasticPolicy()
        for iops in (0, 100, 5000, 50, 9000):
            p.select_codec(iops)
        shares = p.band_shares()
        assert sum(shares) == pytest.approx(1.0)
        assert all(0.0 <= s <= 1.0 for s in shares)

    def test_band_labels(self):
        p = ElasticPolicy(
            (
                IntensityBand(100.0, "gzip"),
                IntensityBand(1000.0, "lzf"),
                IntensityBand(float("inf"), None),
            )
        )
        assert p.band_labels() == ["[0,100)", "[100,1000)", ">=1000"]

    def test_band_labels_align_with_band_index(self):
        p = ElasticPolicy()
        labels = p.band_labels()
        assert len(labels) == len(p.bands)
        assert labels[p.band_index(0.0)].startswith("[0,")
        assert labels[p.band_index(1e9)].startswith(">=")

    def test_uses_gate_by_default(self):
        assert ElasticPolicy().uses_gate
        assert not ElasticPolicy(gate=False).uses_gate

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            ElasticPolicy().select_codec(-1.0)

    def test_band_validation(self):
        with pytest.raises(ValueError):
            ElasticPolicy(())
        with pytest.raises(ValueError):
            ElasticPolicy((IntensityBand(100.0, "gzip"),))  # no inf bound
        with pytest.raises(ValueError):
            ElasticPolicy(
                (
                    IntensityBand(100.0, "gzip"),
                    IntensityBand(100.0, "lzf"),
                    IntensityBand(float("inf"), None),
                )
            )  # not strictly increasing

    def test_matches_paper_semantics(self):
        """Higher-ratio codec at lower intensity; skip above the top bound."""
        p = ElasticPolicy()
        idle = p.select_codec(10.0)
        busy = p.select_codec(DEFAULT_BANDS[0].upper_iops + 1)
        peak = p.select_codec(DEFAULT_BANDS[1].upper_iops + 1)
        assert idle == "gzip"
        assert busy == "lzf"
        assert peak is None
