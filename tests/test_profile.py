"""CPU profiling harness: cProfile wrapper over one replay."""

import io

from repro.bench.profile import profile_replay


class TestProfileReplay:
    def test_profiles_a_short_replay(self):
        report = profile_replay(duration=2.0, top_n=5)
        assert report.n_requests > 0
        assert report.wall_seconds > 0
        assert report.virtual_seconds > 0
        assert report.requests_per_wall_second > 0
        assert 0 < len(report.rows) <= 5
        # the replay entry point dominates cumulative time
        assert any("replay" in r.where for r in report.rows)
        assert report.rows[0].cumtime >= report.rows[-1].cumtime

    def test_render_and_dump(self):
        report = profile_replay(duration=2.0, top_n=5)
        text = report.render()
        assert "cumtime" in text
        assert "Fin1 x EDC" in text
        fp = io.StringIO()
        report.dump(fp)
        assert fp.getvalue() == text + "\n"
