"""Queueing-theory validation of the simulation substrate.

The evaluation's latency numbers are queueing results, so the simulator
must reproduce textbook queueing behaviour.  These tests drive the
:class:`~repro.sim.queueing.Server` with Poisson arrivals and check its
measured waits against closed-form M/D/1 and M/M/1 predictions.
"""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.metrics import LatencyRecorder
from repro.sim.queueing import Server


def run_poisson(service_sampler, rate, n=20_000, seed=1):
    """Drive a single server with Poisson(rate) arrivals; return waits."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    srv = Server(sim)
    waits = LatencyRecorder()
    t = 0.0
    for _ in range(n):
        t += rng.exponential(1.0 / rate)
        svc = service_sampler(rng)
        sim.schedule_at(
            t,
            lambda s=svc: srv.submit(s, on_complete=lambda j: waits.add(j.wait)),
        )
    sim.run()
    return waits, srv


class TestMD1:
    """Deterministic service: W = rho * S / (2 * (1 - rho))."""

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_mean_wait_matches_formula(self, rho):
        service = 0.001
        rate = rho / service
        waits, _ = run_poisson(lambda rng: service, rate)
        expected = rho * service / (2 * (1 - rho))
        assert waits.mean() == pytest.approx(expected, rel=0.15)

    def test_low_load_no_waiting(self):
        waits, _ = run_poisson(lambda rng: 0.001, rate=10.0, n=2000)
        assert waits.mean() < 1e-4


class TestMM1:
    """Exponential service: W = rho * S / (1 - rho)."""

    @pytest.mark.parametrize("rho", [0.5, 0.7])
    def test_mean_wait_matches_formula(self, rho):
        service = 0.001
        rate = rho / service
        waits, _ = run_poisson(lambda rng: rng.exponential(service), rate)
        expected = rho * service / (1 - rho)
        assert waits.mean() == pytest.approx(expected, rel=0.2)


class TestUtilizationLaw:
    def test_measured_utilization_matches_offered_load(self):
        rho = 0.6
        service = 0.001
        waits, srv = run_poisson(lambda rng: service, rho / service)
        assert srv.utilization() == pytest.approx(rho, rel=0.1)

    def test_littles_law(self):
        """L = lambda * W on the waiting room."""
        rho = 0.7
        service = 0.001
        rate = rho / service
        waits, srv = run_poisson(lambda rng: service, rate)
        mean_queue = srv.stats.mean_queue_len(srv.sim.now)
        assert mean_queue == pytest.approx(rate * waits.mean(), rel=0.2)


class TestOverload:
    def test_overloaded_server_grows_queue_linearly(self):
        """rho > 1: backlog at the end ~ (rho - 1) * horizon."""
        service = 0.001
        rate = 1500.0  # rho = 1.5
        rng = np.random.default_rng(3)
        sim = Simulator()
        srv = Server(sim)
        t = 0.0
        n = 15_000
        for _ in range(n):
            t += rng.exponential(1.0 / rate)
            sim.schedule_at(t, lambda: srv.submit(service))
        horizon = t
        sim.run(until=horizon)
        expected_backlog = (rate * service - 1.0) * horizon / service
        assert srv.queue_length == pytest.approx(expected_backlog, rel=0.2)
