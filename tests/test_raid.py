"""Tests for RAIS0/RAIS5 arrays (paper §IV-B, Fig 11)."""

import pytest

from repro.flash.geometry import x25e_like
from repro.flash.raid import RAIS0, RAIS5, _Barrier, _split_units
from repro.flash.ssd import SimulatedSSD
from repro.sim.engine import Simulator


def make_array(sim, cls, n=5, unit=4096):
    devices = [
        SimulatedSSD(sim, name=f"ssd{i}", geometry=x25e_like(32)) for i in range(n)
    ]
    return cls(devices, stripe_unit=unit), devices


class TestSplitUnits:
    def test_single_unit(self):
        assert _split_units(0, 4096, 4096) == [(0, 0, 4096)]

    def test_unaligned_start(self):
        parts = _split_units(1024, 4096, 4096)
        assert parts == [(0, 1024, 3072), (1, 0, 1024)]

    def test_many_units(self):
        parts = _split_units(0, 16384, 4096)
        assert [p[0] for p in parts] == [0, 1, 2, 3]
        assert all(p[2] == 4096 for p in parts)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            _split_units(0, 0, 4096)


class TestBarrier:
    def test_fires_after_count(self):
        hits = []
        b = _Barrier(3, lambda: hits.append(1))
        b.arrive()
        b.arrive()
        assert hits == []
        b.arrive()
        assert hits == [1]

    def test_over_release_detected(self):
        b = _Barrier(1, None)
        b.arrive()
        with pytest.raises(RuntimeError):
            b.arrive()

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            _Barrier(0, None)


class TestRais0:
    def test_needs_two_devices(self):
        sim = Simulator()
        dev = SimulatedSSD(sim, geometry=x25e_like(32))
        with pytest.raises(ValueError):
            RAIS0([dev])

    def test_write_spreads_over_devices(self):
        sim = Simulator()
        arr, devices = make_array(sim, RAIS0)
        arr.submit_write(0, 4096 * 5)
        sim.run()
        assert all(d.stats.writes == 1 for d in devices)

    def test_parallel_completion_faster_than_serial(self):
        sim = Simulator()
        arr, devices = make_array(sim, RAIS0)
        done = []
        arr.submit_write(0, 4096 * 5, on_complete=lambda: done.append(sim.now))
        sim.run()
        serial = 5 * devices[0].service_write_time(4096)
        assert done[0] < serial

    def test_read_routed_to_owning_device(self):
        sim = Simulator()
        arr, devices = make_array(sim, RAIS0)
        arr.submit_read(4096, 4096)  # unit 1 -> device 1
        sim.run()
        assert devices[1].stats.reads == 1
        assert sum(d.stats.reads for d in devices) == 1

    def test_trim_removes_pieces(self):
        sim = Simulator()
        arr, devices = make_array(sim, RAIS0)
        arr.submit_write(0, 4096 * 3, key="k")
        sim.run()
        assert arr.trim("k")
        assert all(not d.ftl.contains(("k", i)) for d in devices for i in range(3))


class TestRais5:
    def test_needs_three_devices(self):
        sim = Simulator()
        devs = [SimulatedSSD(sim, name=f"s{i}", geometry=x25e_like(32)) for i in range(2)]
        with pytest.raises(ValueError):
            RAIS5(devs)

    def test_layout_parity_rotates(self):
        sim = Simulator()
        arr, _ = make_array(sim, RAIS5)
        n = 5
        rows = {}
        for uidx in range(20):
            row, data_dev, parity_dev = arr._layout(uidx)
            assert data_dev != parity_dev
            rows.setdefault(row, parity_dev)
            assert rows[row] == parity_dev  # consistent within a row
        # parity device differs across consecutive rows
        parities = [rows[r] for r in sorted(rows)]
        assert len(set(parities)) == n

    def test_small_write_is_rmw(self):
        """Classic RAID-5 small-write penalty: 2 reads + 2 writes."""
        sim = Simulator()
        arr, devices = make_array(sim, RAIS5)
        done = []
        arr.submit_write(0, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        assert sum(d.stats.reads for d in devices) == 2
        assert sum(d.stats.writes for d in devices) == 2
        assert arr.stats.rmw_writes == 1

    def test_full_stripe_write_skips_reads(self):
        sim = Simulator()
        arr, devices = make_array(sim, RAIS5)
        arr.submit_write(0, 4096 * 4)  # 4 data devices = full row
        sim.run()
        assert sum(d.stats.reads for d in devices) == 0
        assert sum(d.stats.writes for d in devices) == 5  # 4 data + 1 parity
        assert arr.stats.full_stripe_writes == 1

    def test_rmw_orders_reads_before_writes(self):
        sim = Simulator()
        arr, devices = make_array(sim, RAIS5)
        done = []
        arr.submit_write(0, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        d0 = devices[0]
        read_t = d0.service_read_time(4096)
        write_t = d0.service_write_time(4096)
        assert done[0] == pytest.approx(read_t + write_t)

    def test_read_goes_to_single_data_device(self):
        sim = Simulator()
        arr, devices = make_array(sim, RAIS5)
        arr.submit_read(0, 4096)
        sim.run()
        assert sum(d.stats.reads for d in devices) == 1

    def test_multi_row_write_mixes_modes(self):
        sim = Simulator()
        arr, devices = make_array(sim, RAIS5)
        # 5 units: one full row (4 units) + 1 partial in the next row
        arr.submit_write(0, 4096 * 5)
        sim.run()
        assert arr.stats.full_stripe_writes == 1
        assert arr.stats.rmw_writes == 1

    def test_invalid_stripe_unit(self):
        sim = Simulator()
        devs = [SimulatedSSD(sim, name=f"s{i}", geometry=x25e_like(32)) for i in range(3)]
        with pytest.raises(ValueError):
            RAIS5(devs, stripe_unit=0)
