"""Tests for RAIS5 degraded-mode operation and rebuild."""

import pytest

from repro.flash.geometry import x25e_like
from repro.flash.raid import RAIS5
from repro.flash.ssd import SimulatedSSD
from repro.sim.engine import Simulator


def make_array(sim, n=5):
    devices = [
        SimulatedSSD(sim, name=f"ssd{i}", geometry=x25e_like(32)) for i in range(n)
    ]
    return RAIS5(devices), devices


class TestFailureHandling:
    def test_fail_and_state(self):
        sim = Simulator()
        arr, _ = make_array(sim)
        assert not arr.degraded
        arr.fail_device(2)
        assert arr.degraded
        assert arr.failed_device == 2

    def test_double_failure_rejected(self):
        sim = Simulator()
        arr, _ = make_array(sim)
        arr.fail_device(0)
        with pytest.raises(RuntimeError):
            arr.fail_device(1)

    def test_invalid_index(self):
        sim = Simulator()
        arr, _ = make_array(sim)
        with pytest.raises(ValueError):
            arr.fail_device(9)


class TestDegradedReads:
    def test_read_of_failed_member_reconstructs(self):
        sim = Simulator()
        arr, devices = make_array(sim)
        # Unit 0 lives on some data device; fail that device.
        _, data_dev, _ = arr._layout(0)
        arr.fail_device(data_dev)
        done = []
        arr.submit_read(0, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done
        assert arr.stats.degraded_reads == 1
        # All four survivors were read (reconstruction).
        assert sum(d.stats.reads for d in devices) == 4
        assert devices[data_dev].stats.reads == 0

    def test_read_of_surviving_member_unaffected(self):
        sim = Simulator()
        arr, devices = make_array(sim)
        _, dev0, _ = arr._layout(0)
        # Fail a different device than unit 0's home.
        other = (dev0 + 1) % 5
        arr.fail_device(other)
        arr.submit_read(0, 4096)
        sim.run()
        assert arr.stats.degraded_reads == 0
        assert sum(d.stats.reads for d in devices) == 1

    def test_reconstruction_slower_than_direct(self):
        sim = Simulator()
        arr, devices = make_array(sim)
        direct = []
        arr.submit_read(0, 4096, on_complete=lambda: direct.append(sim.now))
        sim.run()
        sim2 = Simulator()
        arr2, devices2 = make_array(sim2)
        _, data_dev, _ = arr2._layout(0)
        arr2.fail_device(data_dev)
        # Pre-load one survivor so its queue delays the reconstruction.
        survivors = [i for i in range(5) if i != data_dev]
        devices2[survivors[0]].submit_read(0, 262144)
        recon = []
        arr2.submit_read(0, 4096, on_complete=lambda: recon.append(sim2.now))
        sim2.run()
        assert recon[0] > direct[0]


class TestDegradedWrites:
    def test_write_to_failed_data_member_updates_parity_only(self):
        sim = Simulator()
        arr, devices = make_array(sim)
        row, data_dev, parity_dev = arr._layout(0)
        arr.fail_device(data_dev)
        done = []
        arr.submit_write(0, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done
        assert arr.stats.degraded_writes == 1
        # n-2 = 3 surviving data units read; parity written.
        assert sum(d.stats.reads for d in devices) == 3
        assert devices[parity_dev].stats.writes == 1
        assert devices[data_dev].stats.writes == 0

    def test_write_with_failed_parity_is_plain_write(self):
        sim = Simulator()
        arr, devices = make_array(sim)
        row, data_dev, parity_dev = arr._layout(0)
        arr.fail_device(parity_dev)
        done = []
        arr.submit_write(0, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done
        assert sum(d.stats.reads for d in devices) == 0
        assert devices[data_dev].stats.writes == 1
        assert arr.stats.degraded_writes == 1

    def test_full_stripe_write_skips_failed_member(self):
        sim = Simulator()
        arr, devices = make_array(sim)
        _, dev_of_unit0, _ = arr._layout(0)
        arr.fail_device(dev_of_unit0)
        done = []
        arr.submit_write(0, 4096 * 4, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done
        assert arr.stats.full_stripe_writes == 1
        # 3 surviving data writes + parity.
        assert sum(d.stats.writes for d in devices) == 4


class TestRebuild:
    def test_rebuild_without_failure_rejected(self):
        sim = Simulator()
        arr, _ = make_array(sim)
        with pytest.raises(RuntimeError):
            arr.rebuild(SimulatedSSD(sim, name="spare", geometry=x25e_like(32)))

    def test_rebuild_restores_normal_operation(self):
        sim = Simulator()
        arr, devices = make_array(sim)
        # Touch two rows, then lose a member.
        arr.submit_write(0, 4096)
        arr.submit_write(arr.stripe_unit * arr.data_devices, 4096)  # row 1
        sim.run()
        _, victim, _ = arr._layout(0)
        arr.fail_device(victim)
        spare = SimulatedSSD(sim, name="spare", geometry=x25e_like(32))
        done = []
        arr.rebuild(spare, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done
        assert not arr.degraded
        assert arr.stats.rebuilt_rows == 2
        assert spare.stats.writes == 2      # one reconstructed unit per row
        # Reads after rebuild go straight to the (new) member.
        pre = arr.stats.degraded_reads
        arr.submit_read(0, 4096)
        sim.run()
        assert arr.stats.degraded_reads == pre

    def test_rebuild_with_no_touched_rows_completes_immediately(self):
        sim = Simulator()
        arr, _ = make_array(sim)
        arr.fail_device(0)
        done = []
        arr.rebuild(
            SimulatedSSD(sim, name="spare", geometry=x25e_like(32)),
            on_complete=lambda: done.append(True),
        )
        assert done == [True]
