"""Property-based tests for the RAIS arrays: no lost completions, ever.

The arrays aggregate variable numbers of sub-operations behind barriers;
a miscounted barrier silently loses a completion and the replay layer
hangs.  Hypothesis drives random request mixes — healthy and degraded —
and requires every submitted operation to complete.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.geometry import x25e_like
from repro.flash.raid import RAIS0, RAIS5
from repro.flash.ssd import SimulatedSSD
from repro.sim.engine import Simulator


ops_strategy = st.lists(
    st.tuples(
        st.booleans(),                        # is read
        st.integers(min_value=0, max_value=40),  # start unit
        st.integers(min_value=1, max_value=6),   # units
    ),
    min_size=1,
    max_size=40,
)


def run_ops(array_cls, ops, n_devices=5, fail=None):
    sim = Simulator()
    devices = [
        SimulatedSSD(sim, name=f"ssd{i}", geometry=x25e_like(32))
        for i in range(n_devices)
    ]
    arr = array_cls(devices)
    if fail is not None:
        arr.fail_device(fail)
    completed = []
    for is_read, unit, units in ops:
        lba = unit * 4096
        nbytes = units * 4096
        if is_read:
            arr.submit_read(lba, nbytes, on_complete=lambda: completed.append(1))
        else:
            arr.submit_write(lba, nbytes, on_complete=lambda: completed.append(1))
    sim.run()
    return arr, devices, completed


class TestNoLostCompletions:
    @given(ops_strategy)
    @settings(max_examples=50, deadline=None)
    def test_rais0_all_ops_complete(self, ops):
        _, _, completed = run_ops(RAIS0, ops)
        assert len(completed) == len(ops)

    @given(ops_strategy)
    @settings(max_examples=50, deadline=None)
    def test_rais5_all_ops_complete(self, ops):
        _, _, completed = run_ops(RAIS5, ops)
        assert len(completed) == len(ops)

    @given(ops_strategy, st.integers(min_value=0, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_rais5_degraded_all_ops_complete(self, ops, failed):
        arr, devices, completed = run_ops(RAIS5, ops, fail=failed)
        assert len(completed) == len(ops)
        # The failed member never receives traffic.
        assert devices[failed].stats.reads == 0
        assert devices[failed].stats.writes == 0

    @given(ops_strategy, st.integers(min_value=0, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_rais5_rebuild_after_random_ops(self, ops, failed):
        sim = Simulator()
        devices = [
            SimulatedSSD(sim, name=f"ssd{i}", geometry=x25e_like(32))
            for i in range(5)
        ]
        arr = RAIS5(devices)
        for is_read, unit, units in ops:
            lba, nbytes = unit * 4096, units * 4096
            if is_read:
                arr.submit_read(lba, nbytes)
            else:
                arr.submit_write(lba, nbytes)
        sim.run()
        arr.fail_device(failed)
        spare = SimulatedSSD(sim, name="spare", geometry=x25e_like(32))
        done = []
        arr.rebuild(spare, on_complete=lambda: done.append(1))
        sim.run()
        assert done == [1]
        assert not arr.degraded


class TestConservation:
    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_rais0_bytes_conserved(self, ops):
        arr, devices, _ = run_ops(RAIS0, ops)
        written = sum(d.stats.bytes_written for d in devices)
        expected = sum(u * 4096 for is_read, _, u in ops if not is_read)
        assert written == expected  # striping adds no write amplification

    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_rais5_writes_at_least_data_plus_parity(self, ops):
        arr, devices, _ = run_ops(RAIS5, ops)
        data_bytes = sum(u * 4096 for is_read, _, u in ops if not is_read)
        written = sum(d.stats.bytes_written for d in devices)
        if data_bytes:
            assert written > data_bytes  # parity overhead always present
