"""Tests for the crash-consistency machinery (``repro.recovery``).

Covers the durable-metadata protocol at every layer: journal tail
durability and truncation, checkpoint retention, OOB program/discard
ordering, the three-source recovery scan with newest-seqno-wins overlay
resolution, all-or-nothing recovery of merged runs, deterministic
rebuilds, CRC scrubbing, the in-band metadata charge showing up in
write amplification, and the no-crash invariant that the machinery
never changes what a replay computes.
"""

import dataclasses

import pytest

from repro.bench.experiments import ReplayConfig, replay
from repro.core.config import EDCConfig
from repro.flash.geometry import x25e_like
from repro.recovery import (
    CheckpointStore,
    DurableMetadataManager,
    ExtentRecord,
    IntegrityTracker,
    MetadataJournal,
    OOBArea,
    RecoveredState,
    RecoveryParams,
    RecoveryScanner,
    block_crcs,
)
from repro.traces.workloads import make_workload

BS = 4096


def rec(seqno, blk, span=1, size=1024, run0=100):
    """A minimal valid record covering ``span`` blocks from ``blk``."""
    original = span * BS
    # The slot class the size-class allocator (25/50/75/100 %) would pick.
    slot = next(
        int(original * f) for f in (0.25, 0.50, 0.75, 1.0)
        if size <= int(original * f)
    )
    return ExtentRecord(
        seqno=seqno,
        lba=blk * BS,
        span=span,
        tag=7,
        size=size,
        original_size=original,
        versions=tuple(range(1, span + 1)),
        run_ids=tuple(run0 + i for i in range(span)),
        codec_name="lzf",
        slot_bytes=slot,
    )


class TestJournal:
    def test_tail_is_volatile_until_flush(self):
        j = MetadataJournal(flush_bytes=10_000)
        j.append_insert(rec(1, 0))
        assert j.pending_records == 1 and j.durable_records == 0
        j.flush()
        assert j.pending_records == 0 and j.durable_records == 1

    def test_auto_flush_at_threshold(self):
        j = MetadataJournal(flush_bytes=1)
        j.append_insert(rec(1, 0))
        assert j.durable_records == 1

    def test_flush_pads_and_charges(self):
        charged = []
        j = MetadataJournal(flush_bytes=10_000, pad_bytes=64, charge=charged.append)
        j.append_reclaim(3)
        j.flush()
        assert charged == [64]  # 13-byte record padded to the program unit

    def test_lose_volatile_tail(self):
        j = MetadataJournal(flush_bytes=10_000)
        j.append_insert(rec(1, 0))
        j.flush()
        j.append_insert(rec(2, 1))
        assert j.lose_volatile_tail() == 1
        assert j.pending_records == 0 and j.durable_records == 1
        assert j.stats.lost_tail_records == 1
        # positions are never reused for new appends
        assert j.next_pos == 2

    def test_truncate_drops_only_checkpointed_prefix(self):
        j = MetadataJournal(flush_bytes=10_000)
        for s in range(1, 5):
            j.append_insert(rec(s, s))
        j.flush()
        assert j.truncate(upto_pos=2) == 2
        assert [r.extent.seqno for r in j.replay_after(0)] == [3, 4]


class TestCheckpointStore:
    def test_keeps_last_two_images(self):
        from repro.recovery.checkpoint import CheckpointImage

        store = CheckpointStore()
        for seq in range(1, 4):
            store.write(CheckpointImage(
                seq=seq, taken_at=float(seq), next_seqno=1, upto_pos=0,
                records=(),
            ))
        assert len(store._images) == 2
        assert store.latest().seq == 3
        assert store.last_taken_at == 3.0


class TestOOB:
    def test_scan_orders_by_seqno_and_counts_pages(self):
        oob = OOBArea()
        oob.program("b", rec(2, 1))
        oob.program("a", rec(1, 0))
        scanned = oob.scan()
        assert [r.seqno for r in scanned] == [1, 2]
        assert oob.stats.scan_pages_read == 2

    def test_discard_removes_record(self):
        oob = OOBArea()
        oob.program("a", rec(1, 0))
        oob.discard("a")
        assert oob.scan() == []


class TestScanner:
    def scan(self, ckpt_records=(), journal=None, oob_records=(), now=0.0):
        store = CheckpointStore()
        if ckpt_records:
            from repro.recovery.checkpoint import CheckpointImage

            store.write(CheckpointImage(
                seq=1, taken_at=0.0,
                next_seqno=max(r.seqno for r in ckpt_records) + 1,
                upto_pos=0, records=tuple(ckpt_records),
            ))
        j = journal if journal is not None else MetadataJournal()
        oob = OOBArea()
        for i, r in enumerate(oob_records):
            oob.program(("e", i), r)
        return RecoveryScanner(store, j, oob, BS).scan(now=now)

    def test_journal_replay_applies_inserts_and_reclaims(self):
        j = MetadataJournal(flush_bytes=1)
        j.append_insert(rec(1, 0))
        j.append_insert(rec(2, 5))
        j.append_reclaim(1)
        state, report = self.scan(journal=j)
        assert set(state.records) == {2}
        assert report.journal_replay_len == 3
        assert report.reclaims_applied == 1

    def test_oob_supplies_records_lost_with_the_tail(self):
        j = MetadataJournal(flush_bytes=1)
        j.append_insert(rec(1, 0))
        state, report = self.scan(journal=j, oob_records=(rec(1, 0), rec(2, 5)))
        assert set(state.records) == {1, 2}
        assert report.oob_only_entries == 1
        assert report.scan_pages_read == 2

    def test_overlay_resolution_newest_seqno_wins(self):
        # 1 covers blocks 0-3; 2 overwrites 1-2; 3 overwrites 0 and 3:
        # record 1 ends with zero coverage and must be dropped even
        # though its reclaim record was lost with the volatile tail.
        state, report = self.scan(oob_records=(
            rec(1, 0, span=4), rec(2, 1, span=2), rec(3, 0, span=1),
            rec(4, 3, span=1),
        ))
        assert set(state.records) == {2, 3, 4}
        assert report.shadowed_dropped == 1
        assert state.coverage() == {0: 3, 1: 2, 2: 2, 3: 4}

    def test_checkpoint_plus_tail(self):
        j = MetadataJournal(flush_bytes=1)
        j.append_insert(rec(2, 5))
        state, report = self.scan(
            ckpt_records=(rec(1, 0),), journal=j, now=3.5,
        )
        assert set(state.records) == {1, 2}
        assert report.checkpoint_entries == 1
        assert state.next_seqno == 3

    def test_fingerprint_ignores_insertion_order(self):
        a = RecoveredState({1: rec(1, 0), 2: rec(2, 5)}, 3, BS)
        b = RecoveredState({2: rec(2, 5), 1: rec(1, 0)}, 3, BS)
        assert a.fingerprint() == b.fingerprint()
        c = RecoveredState({1: rec(1, 0)}, 3, BS)
        assert a.fingerprint() != c.fingerprint()

    def test_rebuild_is_deterministic(self):
        state = RecoveredState(
            {s: rec(s, s * 2, span=2, size=700 * s) for s in range(1, 9)},
            9, BS,
        )
        geo = x25e_like(64)
        one = state.rebuild(geometry=geo)
        two = state.rebuild(geometry=geo)
        assert one.digest() == two.digest()
        assert one.slot_mismatches == 0


class TestIntegrityTracker:
    def test_verify_against_rebuild(self):
        t = IntegrityTracker(BS)
        records = {1: rec(1, 0), 2: rec(2, 5)}
        for r in records.values():
            t.on_programmed(r)
        state = RecoveredState(records, 3, BS)
        rep = t.verify(state.rebuild(), records)
        assert rep.ok and rep.checked == 2

    def test_lost_durable_block_is_lost_acked(self):
        t = IntegrityTracker(BS)
        t.on_programmed(rec(1, 0))
        t.on_programmed(rec(2, 5))
        records = {2: rec(2, 5)}  # recovery lost seqno 1
        state = RecoveredState(records, 3, BS)
        rep = t.verify(state.rebuild(), records)
        assert rep.lost_acked == 1 and rep.lost_acked_blocks == [0]

    def test_volatile_window_is_separate(self):
        t = IntegrityTracker(BS)
        t.on_submitted(0, BS)  # in flight, never programmed
        t.on_programmed(rec(2, 5))
        volatile = t.volatile_blocks({9})  # plus one buffer-dirty block
        assert volatile == {0, 9}
        assert t.crash_reset() == {0}
        records = {2: rec(2, 5)}
        state = RecoveredState(records, 3, BS)
        rep = t.verify(state.rebuild(), records, volatile=volatile)
        assert rep.ok and rep.lost_volatile == 2

    def test_newer_generation_wins(self):
        t = IntegrityTracker(BS)
        t.on_programmed(rec(1, 0, run0=100))
        t.on_programmed(rec(3, 0, run0=200))
        records = {3: rec(3, 0, run0=200)}
        state = RecoveredState(records, 4, BS)
        assert t.verify(state.rebuild(), records).ok

    def test_crc_mismatch_is_corruption(self):
        good = dataclasses.replace(rec(1, 0), crc=(1234,))
        bad = dataclasses.replace(rec(1, 0), crc=(9999,))
        t = IntegrityTracker(BS)
        t.on_programmed(good)
        records = {1: bad}
        state = RecoveredState(records, 2, BS)
        rep = t.verify(state.rebuild(), records)
        assert rep.corrupt == 1 and not rep.ok


def managed_replay(duration=2.0, crc=False, **params):
    cfg = ReplayConfig(
        backend="ssd", device_config=EDCConfig(crc_checks=crc),
    )
    trace = make_workload("Fin1", duration=duration)
    manager = DurableMetadataManager(RecoveryParams(**params))
    result = replay(trace, "EDC", cfg, recovery=manager)
    return cfg, manager, result


class TestManagerEndToEnd:
    def test_scan_matches_oracle_after_clean_replay(self):
        cfg, manager, _ = managed_replay(checkpoint_interval_s=0.5)
        state, report = RecoveryScanner(
            manager.checkpoints, manager.journal, manager.oob, BS
        ).scan()
        oracle = RecoveredState(manager.live_records, manager.next_seqno, BS)
        assert state.fingerprint() == oracle.fingerprint()
        assert report.recovered_entries == len(manager.live_records)
        assert report.inconsistencies == 0

    def test_merged_runs_are_all_or_nothing(self):
        # Nothing about a multi-block extent becomes durable before its
        # program completes, so every durable record is whole: the spans
        # and run_ids in any scan are internally complete.
        _, manager, result = managed_replay(checkpoint_interval_s=0.5)
        assert result.merged_runs > 0
        for r in manager.live_records.values():
            assert len(r.run_ids) == r.span
            assert len(r.versions) == r.span

    def test_metadata_charge_shows_up_in_flash_traffic(self):
        # Journal flushes and checkpoint images are real in-band device
        # writes: the managed replay's FTL sees more host bytes than the
        # baseline — at least the charged metadata — so WA and the
        # energy model account for durability instead of getting it free.
        cfg = ReplayConfig(backend="ssd")
        trace = make_workload("Fin1", duration=2.0)
        captured = {}

        def grab(_sim, _device, backend, _devices):
            captured["ftl"] = backend.ftl

        replay(trace, "EDC", cfg, on_built=grab)
        base_host = captured["ftl"].stats.host_bytes
        manager = DurableMetadataManager(
            RecoveryParams(checkpoint_interval_s=0.5)
        )
        replay(trace, "EDC", cfg, recovery=manager, on_built=grab)
        managed_host = captured["ftl"].stats.host_bytes
        assert manager.stats.meta_write_bytes > 0
        assert manager.stats.meta_device_seconds > 0
        assert managed_host >= base_host + manager.stats.meta_write_bytes

    def test_uncharged_mode_keeps_byte_accounting_only(self):
        _, manager, _ = managed_replay(
            checkpoint_interval_s=0.5, charge_metadata=False,
        )
        assert manager.stats.meta_write_bytes > 0
        assert manager.stats.meta_device_seconds == 0.0

    def test_no_recovery_replay_is_bit_identical_to_seed(self):
        cfg = ReplayConfig(backend="ssd")
        trace = make_workload("Fin1", duration=2.0)
        assert replay(trace, "EDC", cfg) == replay(
            trace, "EDC", cfg, recovery=None
        )

    def test_managed_replay_results_stay_close_to_baseline(self):
        # The in-band metadata traffic perturbs latency/WA only within
        # the regression-gate tolerances; the content-derived results
        # (compression ratio, merges) are exactly unchanged.
        cfg = ReplayConfig(backend="ssd")
        trace = make_workload("Fin1", duration=2.0)
        base = replay(trace, "EDC", cfg)
        managed = replay(
            trace, "EDC", cfg,
            recovery=DurableMetadataManager(
                RecoveryParams(checkpoint_interval_s=0.5)
            ),
        )
        assert managed.compression_ratio == base.compression_ratio
        assert managed.merged_runs == base.merged_runs
        assert managed.mean_response <= base.mean_response * 1.10
        assert managed.write_amplification <= base.write_amplification * 1.10

    def test_crc_checks_store_and_verify(self):
        cfg, manager, _ = managed_replay(crc=True, checkpoint_interval_s=0.5)
        recs = list(manager.live_records.values())
        assert recs and all(r.crc is not None for r in recs)
        from repro.sdgen.generator import ContentStore

        content = ContentStore(
            cfg.content_mix, block_size=BS,
            pool_blocks=cfg.pool_blocks, seed=cfg.content_seed,
        )
        state, _ = RecoveryScanner(
            manager.checkpoints, manager.journal, manager.oob, BS
        ).scan()
        scrub = state.scrub(content)
        assert scrub.mismatches == 0
        assert scrub.checked_blocks > 0

    def test_read_path_detects_crc_mismatch(self):
        from repro.core.device import IntegrityError
        from repro.sim.engine import Simulator
        from repro.sdgen.generator import ContentStore
        from repro.bench.schemes import build_device
        from repro.flash.ssd import SimulatedSSD
        from repro.sdgen.datasets import ENTERPRISE_MIX
        from repro.traces.model import IORequest, READ, WRITE

        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(64))
        content = ContentStore(ENTERPRISE_MIX, block_size=BS, pool_blocks=64)
        device = build_device(
            sim, "EDC", ssd, content, config=EDCConfig(crc_checks=True),
        )
        device.submit(IORequest(0.0, WRITE, 0, BS))
        sim.run()
        device.flush()
        sim.run()
        # Corrupt the stored CRC of the extent covering block 0.
        eid, entry = device.mapping.lookup(0)
        device.mapping._entries[eid] = dataclasses.replace(
            entry, crc=tuple(c ^ 0xFFFF for c in entry.crc)
        )
        with pytest.raises(IntegrityError):
            device.submit(IORequest(sim.now, READ, 0, BS))
            sim.run()

    def test_block_crcs_slices_per_block(self):
        data = bytes(range(256)) * 32  # two 4 KiB blocks
        crcs = block_crcs(data, BS)
        assert len(crcs) == 2
        assert crcs[0] == crcs[1]  # identical halves
        assert block_crcs(data[:BS], BS) == (crcs[0],)


class TestVictimInheritance:
    def test_dropped_pending_victims_are_inherited(self):
        # A programmed extent A is shadowed by pending B; before B
        # programs, C shadows B.  B never becomes durable — but A's
        # reclaim must ride with C, or A leaks in _live/checkpoints.
        from repro.flash.mapping import MappingEntry

        class _Sim:
            now = 0.0

            def every(self, *a, **k):
                class _H:
                    def cancel(self):
                        pass
                return _H()

        class _Dev:
            sim = _Sim()
            backend = object()  # no .ftl: OOB install is skipped

        m = DurableMetadataManager(RecoveryParams(charge_metadata=False))
        m.bind_device(_Dev())

        def entry(lba):
            return MappingEntry(
                lba=lba, size=512, tag=1, span=1, original_size=BS
            )

        m.on_insert(10, entry(0), (1,), "lzf", (1,), (), BS)
        m.on_programmed(10)  # A durable
        m.on_insert(11, entry(0), (2,), "lzf", (2,), (10,), BS)  # B shadows A
        m.on_insert(12, entry(0), (3,), "lzf", (3,), (11,), BS)  # C drops B
        m.on_programmed(12)
        assert m.stats.dropped_unprogrammed == 1
        # A (seqno 1) was reclaimed by C's program, not leaked.
        assert set(r.seqno for r in m.live_records.values()) == {3}
        m.journal.flush(forced=True)
        reclaimed = {
            r.victim_seqno for r in m.journal.durable if r.kind == "reclaim"
        }
        assert 1 in reclaimed
