"""Tests for the benchmark regression harness (repro.bench.regress).

Replays are kept to a ~3-virtual-second Fin1 slice so the whole module
stays fast; the committed 60 s baseline is exercised structurally (the
CLI gate against it runs in CI, not here).
"""

import json
import os

import pytest

from repro.bench import regress
from repro.bench.regress import (
    CANONICAL_TRACES,
    DEFAULT_TOLERANCES,
    GATED_METRICS,
    SCHEMA_VERSION,
    RegressionError,
    compare,
    load_baseline,
    make_baseline,
    next_bench_path,
    run_bench,
)

DURATION = 3.0


@pytest.fixture(scope="module")
def record():
    return run_bench(traces=["Fin1"], duration=DURATION)


class TestRunBench:
    def test_record_shape(self, record):
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["scheme"] == "EDC"
        assert record["duration_s"] == DURATION
        fin1 = record["traces"]["Fin1"]
        for metric in GATED_METRICS:
            assert metric in fin1
        assert fin1["n_requests"] > 0
        assert fin1["mean_response_s"] > 0
        assert fin1["throughput_iops"] == pytest.approx(
            fin1["n_requests"] / DURATION
        )
        assert fin1["wall_clock_s"] >= 0

    def test_unknown_trace_rejected(self):
        with pytest.raises(ValueError):
            run_bench(traces=["NotATrace"], duration=1.0)


class TestCompare:
    def test_self_baseline_passes(self, record):
        baseline = make_baseline(record)
        assert compare(record, baseline) == []

    def test_tightened_tolerance_names_the_metric(self, record):
        baseline = make_baseline(record)
        baseline["tolerances"]["compression_ratio"] = 1e-12
        baseline["traces"]["Fin1"]["compression_ratio"] *= 1.001
        violations = compare(record, baseline)
        assert len(violations) == 1
        assert violations[0].startswith("Fin1.compression_ratio:")
        assert "tolerance" in violations[0]

    def test_trace_missing_from_baseline_is_violation(self, record):
        baseline = make_baseline(record)
        del baseline["traces"]["Fin1"]
        violations = compare(record, baseline)
        assert violations == ["Fin1: not present in baseline"]

    def test_duration_mismatch_uncomparable(self, record):
        baseline = make_baseline(record)
        baseline["duration_s"] = DURATION * 2
        with pytest.raises(RegressionError):
            compare(record, baseline)

    def test_scheme_mismatch_uncomparable(self, record):
        baseline = make_baseline(record)
        baseline["scheme"] = "Native"
        with pytest.raises(RegressionError):
            compare(record, baseline)


class TestBaselineIO:
    def test_load_rejects_wrong_schema_version(self, tmp_path, record):
        baseline = make_baseline(record)
        baseline["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        with pytest.raises(RegressionError):
            load_baseline(str(path))

    def test_load_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        with pytest.raises(RegressionError):
            load_baseline(str(path))

    def test_committed_baseline_is_valid(self):
        root = os.path.join(os.path.dirname(__file__), "..")
        doc = load_baseline(os.path.join(root, "benchmarks",
                                         "baseline.json"))
        assert set(doc["traces"]) == set(CANONICAL_TRACES)
        assert set(doc["tolerances"]) == set(DEFAULT_TOLERANCES)
        for vals in doc["traces"].values():
            assert set(vals) == set(GATED_METRICS)


class TestBenchNumbering:
    def test_starts_at_one(self, tmp_path):
        assert next_bench_path(str(tmp_path)).endswith("BENCH_1.json")

    def test_increments_past_highest(self, tmp_path):
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        (tmp_path / "BENCH_03.json").write_text("{}")  # zero-padded counts
        (tmp_path / "notes.txt").write_text("ignored")
        assert next_bench_path(str(tmp_path)).endswith("BENCH_8.json")


class TestCli:
    def test_gate_pass_and_fail_round_trip(self, tmp_path, record):
        # Pin a baseline from the fixture record, then gate a fresh run
        # against it: deterministic replay -> pass; a tolerance
        # tightened to ~zero with a nudged pin -> exit 1 naming the
        # metric; a different duration -> exit 2 (uncomparable).
        base_path = tmp_path / "baseline.json"
        base_path.write_text(json.dumps(make_baseline(record)))
        out = tmp_path / "out"
        argv = ["--traces", "Fin1", "--baseline", str(base_path),
                "--out-dir", str(out)]
        assert regress.main(argv) == 0
        rec = json.loads((out / "BENCH_1.json").read_text())
        assert rec["schema_version"] == SCHEMA_VERSION
        assert rec["baseline"]["passed"] is True

        tight = json.loads(base_path.read_text())
        tight["tolerances"]["mean_response_s"] = 1e-12
        tight["traces"]["Fin1"]["mean_response_s"] *= 1.001
        base_path.write_text(json.dumps(tight))
        assert regress.main(argv) == 1
        rec = json.loads((out / "BENCH_2.json").read_text())
        assert rec["baseline"]["passed"] is False
        assert any("Fin1.mean_response_s" in v
                   for v in rec["baseline"]["violations"])

        assert regress.main(argv + ["--duration", str(DURATION * 2)]) == 2

    def test_missing_baseline_is_usage_error(self, tmp_path):
        assert regress.main(
            ["--traces", "Fin1", "--duration", "1",
             "--baseline", str(tmp_path / "nope.json"),
             "--out-dir", str(tmp_path)]
        ) == 2
