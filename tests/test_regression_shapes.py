"""Fast qualitative-shape regression test.

The benchmark suite replays minutes of virtual time per scheme; this
test replays a short window of one trace and asserts only the coarse
orderings every figure depends on.  If a code or calibration change
breaks the paper's shape, this fails in seconds instead of surfacing
twenty minutes into ``pytest benchmarks/``.
"""

import pytest

from repro.bench.experiments import ReplayConfig, replay_all_schemes
from repro.traces.workloads import make_workload


@pytest.fixture(scope="module")
def results():
    trace = make_workload("Fin1", duration=40.0, max_requests=None, seed=42)
    return replay_all_schemes(trace, ReplayConfig())


class TestShapeRegression:
    def test_ratio_ordering(self, results):
        """Fig 8's backbone: Native < Lzf <= EDC-ish < Gzip."""
        assert results["Native"].compression_ratio == pytest.approx(1.0)
        assert results["Lzf"].compression_ratio > 1.15
        assert results["Gzip"].compression_ratio > results["Lzf"].compression_ratio
        assert results["Bzip2"].compression_ratio > results["Lzf"].compression_ratio
        assert (
            results["EDC"].compression_ratio < results["Gzip"].compression_ratio
        )

    def test_response_ordering(self, results):
        """Fig 10's backbone: Native <= Lzf < EDC < Gzip < Bzip2."""
        r = {s: res.mean_response for s, res in results.items()}
        assert r["Lzf"] < 1.8 * r["Native"]
        assert r["Gzip"] > r["Lzf"]
        assert r["Bzip2"] > r["Gzip"]
        assert r["EDC"] < r["Bzip2"]

    def test_composite_backbone(self, results):
        """Fig 9's backbone: heavy fixed compression loses to adaptive."""
        c = {s: res.composite for s, res in results.items()}
        assert c["Bzip2"] < c["Native"]
        assert c["EDC"] > c["Bzip2"]
        assert c["Lzf"] > c["Gzip"]

    def test_edc_mechanisms_engaged(self, results):
        edc = results["EDC"]
        # All three bands and the gate saw action.
        assert edc.codec_shares.get("lzf", 0) > 0
        assert edc.codec_shares.get("gzip", 0) > 0
        assert edc.skipped_incompressible > 0
        assert edc.merged_runs > 0

    def test_space_saving_band(self, results):
        """EDC saves meaningful space (paper: up to 38.7%; ours: 15-35%)."""
        assert 0.10 <= results["EDC"].space_saving <= 0.45
