"""Tests for the TraceReplayer driver."""

import pytest

from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice
from repro.core.policy import FixedPolicy
from repro.core.replay import ReplayError, ReplayOutcome, TraceReplayer
from repro.flash.geometry import x25e_like
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest, Trace


def setup():
    sim = Simulator()
    ssd = SimulatedSSD(sim, geometry=x25e_like(32))
    content = ContentStore(ENTERPRISE_MIX, pool_blocks=16, seed=1)
    dev = EDCBlockDevice(sim, ssd, FixedPolicy("lzf"), content, EDCConfig(sd_enabled=False))
    return sim, dev


def trace(n=5):
    return Trace("t", [IORequest(i * 0.01, "W", i * 4096, 4096) for i in range(n)])


class TestReplayer:
    def test_replay_outcome(self):
        sim, dev = setup()
        out = TraceReplayer(sim, dev).replay(trace(5))
        assert isinstance(out, ReplayOutcome)
        assert out.n_requests == 5
        assert out.horizon >= 0.04
        assert out.mean_response > 0
        assert out.compression_ratio >= 1.0

    def test_schedule_multiple_traces(self):
        sim, dev = setup()
        rep = TraceReplayer(sim, dev)
        rep.schedule(trace(3))
        rep.schedule(Trace("t2", [IORequest(0.5, "R", 0, 4096)]))
        out = rep.run()
        assert out.n_requests == 4
        assert out.mean_read_response > 0

    def test_mismatched_simulator_rejected(self):
        sim, dev = setup()
        with pytest.raises(ValueError):
            TraceReplayer(Simulator(), dev)

    def test_empty_trace(self):
        sim, dev = setup()
        out = TraceReplayer(sim, dev).replay(Trace("empty", []))
        assert out.n_requests == 0
        assert out.mean_response == 0.0

    def test_matches_manual_loop(self):
        sim1, dev1 = setup()
        out = TraceReplayer(sim1, dev1).replay(trace(8))
        sim2, dev2 = setup()
        for req in trace(8):
            sim2.schedule_at(req.time, lambda r=req: dev2.submit(r))
        sim2.run()
        dev2.flush()
        sim2.run()
        assert out.mean_response == pytest.approx(dev2.mean_response_time())
