"""Tests for the online media scrubber and self-healing repair.

The headline contract (the chaos harness's acceptance bar): a latent
fault plan replayed with the scrubber armed repairs every corrupted
extent before the host reads it — verdict RECOVERED, zero host-path
``IntegrityError`` — while the identical plan with scrub disabled
verdicts CORRUPTION.  Also locks: config validation, unified verdict
exit codes, repair I/O charged into the device's WA split, the
unrepairable escalation on redundancy-free backends, the retirement
capacity guard, and the fleet replica-repair hook.
"""

import json
import pathlib

import pytest

from repro.bench import verdicts
from repro.bench.chaos import run_chaos
from repro.faults import FaultPlan
from repro.flash.scrub import MediaScrubber, ScrubConfig, ScrubStats

PLAN_PATH = pathlib.Path(__file__).parent.parent / "benchmarks" / "latent_fin1.json"


def committed_plan():
    return FaultPlan.from_json(str(PLAN_PATH))


# ----------------------------------------------------------------------
# unified verdict vocabulary (satellite)
# ----------------------------------------------------------------------
class TestVerdicts:
    def test_exit_code_mapping(self):
        assert verdicts.EXIT_CODES == {
            verdicts.RECOVERED: 0,
            verdicts.DEGRADED: 1,
            verdicts.DATA_LOSS: 2,
            verdicts.CORRUPTION: 3,
        }
        assert verdicts.DATA_LOSS == "DATA-LOSS"

    def test_severity_orders_verdicts(self):
        ordered = sorted(verdicts.VERDICTS, key=verdicts.severity)
        assert ordered == [
            verdicts.RECOVERED, verdicts.DEGRADED,
            verdicts.DATA_LOSS, verdicts.CORRUPTION,
        ]

    def test_worst(self):
        assert verdicts.worst(
            verdicts.RECOVERED, verdicts.DEGRADED
        ) == verdicts.DEGRADED
        assert verdicts.worst(verdicts.CORRUPTION) == verdicts.CORRUPTION
        assert verdicts.worst() == verdicts.RECOVERED

    def test_unknown_verdict_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            verdicts.exit_code("FINE")

    def test_harnesses_share_the_vocabulary(self):
        from repro.bench import chaos, crash
        from repro.cluster import replication

        assert crash.RECOVERED == verdicts.RECOVERED
        assert replication.DurabilityReport.EXIT_CODES is verdicts.EXIT_CODES
        assert chaos.CORRUPTION == verdicts.CORRUPTION


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
class TestScrubConfig:
    def test_defaults_valid(self):
        ScrubConfig()

    @pytest.mark.parametrize("kw", [
        {"interval_s": 0.0},
        {"interval_s": -1.0},
        {"entries_per_tick": 0},
        {"max_outstanding": -1},
        {"retire_threshold": 0},
        {"repair_retry_ticks": 0},
    ])
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            ScrubConfig(**kw)

    def test_stats_fields_complete(self):
        assert set(ScrubStats().as_dict()) == set(ScrubStats.FIELDS)


# ----------------------------------------------------------------------
# the headline: scrub on repairs, scrub off corrupts
# ----------------------------------------------------------------------
class TestSelfHealing:
    @pytest.fixture(scope="class")
    def reports(self):
        plan = committed_plan()
        on = run_chaos(plan, duration=5.0, scrub_interval=0.005)
        off = run_chaos(plan, duration=5.0)
        return on, off

    def test_scrub_on_recovers(self, reports):
        on, _ = reports
        assert on.verdict == verdicts.RECOVERED
        assert on.exit_code == 0
        assert on.corrupt_reads == 0          # host never saw corrupt media
        assert on.residual_corrupt == 0       # media clean at end of run
        assert on.scrub is not None
        stats = on.scrub["stats"]
        assert stats["corrupt_found"] > 0
        assert stats["parity_repairs"] > 0
        assert stats["unrepairable"] == 0
        assert stats["repaired_bytes"] > 0

    def test_scrub_off_corrupts(self, reports):
        _, off = reports
        assert off.verdict == verdicts.CORRUPTION
        assert off.exit_code == 3
        assert off.residual_corrupt > 0
        assert off.scrub is None

    def test_scrub_io_is_charged(self, reports):
        on, off = reports
        stats = on.scrub["stats"]
        # Verify reads and survivor reconstruction reads hit the queues:
        # the scrubbed run is visibly slower than the idle baseline.
        assert stats["verify_bytes"] > 0
        assert stats["repair_read_bytes"] > 0
        assert on.result.mean_response > off.result.mean_response

    def test_report_round_trips_to_json(self, reports):
        on, _ = reports
        d = on.as_dict()
        blob = json.loads(json.dumps(d))
        assert blob["verdict"] == verdicts.RECOVERED
        assert blob["exit_code"] == 0
        assert blob["scrub"]["stats"]["parity_repairs"] > 0
        assert blob["latent"]["corrupted_extents"] > 0

    def test_render_mentions_scrub_and_latent(self, reports):
        on, off = reports
        text = on.render()
        assert "scrub:" in text
        assert "latent:" in text
        assert verdicts.RECOVERED in text
        assert verdicts.CORRUPTION in off.render()

    def test_scrub_runs_are_deterministic(self, reports):
        on, _ = reports
        again = run_chaos(committed_plan(), duration=5.0, scrub_interval=0.005)
        assert again.scrub["stats"] == on.scrub["stats"]
        assert again.latent == on.latent
        assert again.verdict == on.verdict


# ----------------------------------------------------------------------
# escalation: no redundancy -> unrepairable -> CORRUPTION accounting
# ----------------------------------------------------------------------
class TestEscalation:
    def test_single_ssd_without_replica_is_unrepairable(self):
        plan = FaultPlan(
            seed=5,
            retention={
                "rate_per_s": 0.5, "age_factor": 1.0, "check_interval_s": 0.02,
            },
        )
        rep = run_chaos(plan, backend="ssd", duration=2.0, scrub_interval=0.005)
        assert rep.scrub["stats"]["unrepairable"] > 0
        assert rep.scrub["stats"]["parity_repairs"] == 0
        assert rep.verdict == verdicts.CORRUPTION
        assert rep.exit_code == 3

    def test_hot_plan_retires_blocks_without_filling_device(self):
        plan = FaultPlan(
            seed=9,
            retention={
                "rate_per_s": 2.0, "age_factor": 1.0, "check_interval_s": 0.02,
            },
        )
        # The capacity guard must keep mass retirement from shrinking
        # the address space below the live footprint (DeviceFullError).
        rep = run_chaos(plan, duration=3.0, scrub_interval=0.005)
        assert rep.scrub["stats"]["blocks_retired"] > 0
        assert rep.result.n_requests > 0


# ----------------------------------------------------------------------
# scrubber unit mechanics
# ----------------------------------------------------------------------
class _FakeDevice:
    """Just enough device for constructing a MediaScrubber."""

    class _Backend:
        pass

    class _Mapping:
        @staticmethod
        def entry_ids():
            return []

        @staticmethod
        def get(eid):
            return None

    def __init__(self):
        self.backend = self._Backend()
        self.mapping = self._Mapping()
        self.outstanding = 0


class TestScrubberLifecycle:
    def test_attaches_to_device_and_stops(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        dev = _FakeDevice()
        scrubber = MediaScrubber(sim, dev, ScrubConfig(interval_s=0.01))
        assert dev.scrubber is scrubber
        scrubber.start()
        sim.schedule(0.1, lambda: None)
        sim.run()
        assert scrubber.stats.ticks > 0
        ticks = scrubber.stats.ticks
        scrubber.stop()
        sim.schedule(0.1, lambda: None)
        sim.run()
        assert scrubber.stats.ticks == ticks  # daemon actually cancelled

    def test_busy_device_stands_down(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        dev = _FakeDevice()
        dev.outstanding = 99
        scrubber = MediaScrubber(sim, dev, ScrubConfig(max_outstanding=4))
        scrubber.start()
        sim.schedule(0.05, lambda: None)
        sim.run()
        assert scrubber.stats.skipped_busy == scrubber.stats.ticks > 0

    def test_audit_surfaces(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        scrubber = MediaScrubber(sim, _FakeDevice())
        scrubber._note(3, 4096, 512, "repair-parity", "ssd1")
        table = scrubber.audit_table()
        assert "scrub audit" in table
        assert "repair-parity" in table
        d = scrubber.to_dict()
        assert set(d) == {"config", "stats", "episodes"}
        assert d["episodes"][0]["action"] == "repair-parity"


# ----------------------------------------------------------------------
# fleet replica repair hook
# ----------------------------------------------------------------------
class TestReplicaSource:
    def test_replica_source_reingests_from_peer(self):
        from tests.test_cluster_replication import (
            BS, populate, rep_fleet, run_all,
        )

        fleet = rep_fleet(n_shards=2)
        populate(fleet, range(8))
        mgr = fleet.replication
        name = sorted(fleet.cluster.shards)[0]
        repair = mgr.replica_source_for(name)
        assert repair(0, BS) is True
        run_all(fleet)
        assert mgr.stats.scrub_repairs >= 1
        assert mgr.stats.scrub_repair_bytes >= BS

    def test_unwritten_range_is_not_repairable(self):
        from tests.test_cluster_replication import rep_fleet, run_all

        fleet = rep_fleet(n_shards=2)
        run_all(fleet)
        name = sorted(fleet.cluster.shards)[0]
        repair = fleet.replication.replica_source_for(name)
        assert repair(1 << 26, 4096) is False
        assert fleet.replication.stats.scrub_repairs == 0
