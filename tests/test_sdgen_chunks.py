"""Tests for the per-class content chunk generators."""

import zlib

import numpy as np
import pytest

from repro.compression.lzf import lzf_compress
from repro.sdgen.chunks import (
    BinaryRecordChunk,
    CHUNK_CLASSES,
    CodeChunk,
    CompressedChunk,
    RandomChunk,
    TextChunk,
    ZeroChunk,
)

ALL_KINDS = sorted(CHUNK_CLASSES)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestAllGenerators:
    def test_exact_size(self, kind, rng):
        gen = CHUNK_CLASSES[kind]()
        for size in (1, 100, 4096, 5000):
            assert len(gen.generate(rng, size)) == size

    def test_deterministic_given_rng_state(self, kind):
        a = CHUNK_CLASSES[kind]().generate(np.random.default_rng(7), 4096)
        b = CHUNK_CLASSES[kind]().generate(np.random.default_rng(7), 4096)
        assert a == b


def _ratio(gen, rng, codec=lambda d: zlib.compress(d, 6), n=16):
    blocks = [gen.generate(rng, 4096) for _ in range(n)]
    return float(np.mean([4096 / len(codec(b)) for b in blocks]))


class TestCompressibilityCalibration:
    """Per-class ratios documented in the module docstring."""

    def test_zero_extremely_compressible(self, rng):
        assert _ratio(ZeroChunk(), rng) > 50

    def test_text_moderate(self, rng):
        r = _ratio(TextChunk(), rng)
        assert 1.9 <= r <= 3.2

    def test_text_gzip_beats_lzf_substantially(self, rng):
        """The Huffman gap the Fig 8 separation depends on."""
        g = _ratio(TextChunk(), rng)
        l = _ratio(TextChunk(), rng, codec=lzf_compress)
        assert g / l > 1.3

    def test_code_highly_compressible(self, rng):
        assert _ratio(CodeChunk(), rng) > 3.0

    def test_binary_record_moderate(self, rng):
        r = _ratio(BinaryRecordChunk(), rng)
        assert 1.7 <= r <= 3.2

    def test_random_incompressible(self, rng):
        assert _ratio(RandomChunk(), rng) < 1.05

    def test_compressed_incompressible(self, rng):
        assert _ratio(CompressedChunk(), rng) < 1.1

    def test_skewed_spectrum(self, rng):
        """§I: compressibility across classes is strongly skewed."""
        ratios = {
            kind: _ratio(CHUNK_CLASSES[kind](), rng, n=8) for kind in ALL_KINDS
        }
        assert max(ratios.values()) > 10 * min(ratios.values())


class TestRegistry:
    def test_kind_keys_match_classes(self):
        for kind, cls in CHUNK_CLASSES.items():
            assert cls.kind == kind

    def test_expected_roster(self):
        assert set(CHUNK_CLASSES) == {
            "zero",
            "text",
            "code",
            "binary-record",
            "random",
            "compressed",
        }
