"""Tests for the ContentStore (deterministic content + memoised compression)."""

import pytest

from repro.compression.codec import default_registry
from repro.sdgen.datasets import DATASETS, ENTERPRISE_MIX, FIREFOX_MIX, LINUX_SOURCE_MIX, build_corpus
from repro.sdgen.generator import ContentMix, ContentStore


@pytest.fixture(scope="module")
def store():
    return ContentStore(ENTERPRISE_MIX, pool_blocks=64, seed=3)


class TestContentMix:
    def test_normalized(self):
        m = ContentMix("m", {"text": 3.0, "random": 1.0})
        n = m.normalized()
        assert n["text"] == pytest.approx(0.75)
        assert sum(n.values()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentMix("m", {})
        with pytest.raises(ValueError):
            ContentMix("m", {"bogus-class": 1.0})
        with pytest.raises(ValueError):
            ContentMix("m", {"text": -1.0})
        with pytest.raises(ValueError):
            ContentMix("m", {"text": 0.0})


class TestDeterminism:
    def test_same_lba_same_content(self, store):
        assert store.block_for(12345 * 4096) == store.block_for(12345 * 4096)

    def test_same_seed_same_assignment(self):
        a = ContentStore(ENTERPRISE_MIX, pool_blocks=64, seed=3)
        b = ContentStore(ENTERPRISE_MIX, pool_blocks=64, seed=3)
        for lba in (0, 4096, 999 * 4096):
            assert a.block_for(lba) == b.block_for(lba)

    def test_different_seed_differs(self):
        a = ContentStore(ENTERPRISE_MIX, pool_blocks=64, seed=3)
        b = ContentStore(ENTERPRISE_MIX, pool_blocks=64, seed=4)
        assert any(
            a.block_for(i * 4096) != b.block_for(i * 4096) for i in range(20)
        )

    def test_version_changes_content(self, store):
        ids = {store.block_id(0, v) for v in range(20)}
        assert len(ids) > 1

    def test_sub_block_offsets_share_content(self, store):
        assert store.block_for(8192) == store.block_for(8192 + 1000)

    def test_negative_lba_rejected(self, store):
        with pytest.raises(ValueError):
            store.block_id(-1)


class TestPool:
    def test_block_sizes(self, store):
        assert all(len(store.block_for(i * 4096)) == 4096 for i in range(10))

    def test_pool_stats_cover_all_blocks(self, store):
        stats = store.pool_stats()
        assert sum(stats.values()) == store.pool_blocks

    def test_kind_for_matches_mix(self, store):
        kinds = {store.kind_for(i * 4096) for i in range(64)}
        assert kinds <= set(ENTERPRISE_MIX.weights)

    def test_run_ids_and_data(self, store):
        ids = store.run_ids(0, 3)
        assert len(ids) == 3
        data = store.data_for_run(ids)
        assert len(data) == 3 * 4096
        assert data[:4096] == store.block_for(0)

    def test_run_ids_with_versions(self, store):
        v0 = store.run_ids(0, 2, versions=[0, 0])
        v1 = store.run_ids(0, 2, versions=[1, 0])
        assert v0[1] == v1[1]


class TestCompressionMemoisation:
    def test_size_cache_hits(self):
        store = ContentStore(ENTERPRISE_MIX, pool_blocks=16, seed=1)
        gzip = default_registry().get("gzip")
        ids = store.run_ids(0, 1)
        s1 = store.compressed_size(ids, gzip)
        misses = store.cache_misses
        s2 = store.compressed_size(ids, gzip)
        assert s1 == s2
        assert store.cache_misses == misses
        assert store.cache_hits >= 1

    def test_sizes_are_real_compression(self):
        store = ContentStore(ENTERPRISE_MIX, pool_blocks=16, seed=1)
        gzip = default_registry().get("gzip")
        ids = store.run_ids(0, 1)
        assert store.compressed_size(ids, gzip) == len(
            gzip.compress(store.data_for_run(ids))
        )

    def test_payload_round_trip(self):
        store = ContentStore(ENTERPRISE_MIX, pool_blocks=16, seed=1)
        lzf = default_registry().get("lzf")
        ids = store.run_ids(4096, 2)
        payload = store.compressed_payload(ids, lzf)
        assert lzf.decompress(payload, 8192) == store.data_for_run(ids)

    def test_distinct_codecs_cached_separately(self):
        store = ContentStore(ENTERPRISE_MIX, pool_blocks=16, seed=1)
        reg = default_registry()
        ids = store.run_ids(0, 1)
        store.compressed_size(ids, reg.get("gzip"))
        store.compressed_size(ids, reg.get("lzf"))
        assert store.cache_entries == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentStore(ENTERPRISE_MIX, block_size=0)
        with pytest.raises(ValueError):
            ContentStore(ENTERPRISE_MIX, pool_blocks=0)


class TestDatasets:
    def test_canned_mixes_registered(self):
        assert {"linux-source", "firefox", "enterprise"} <= set(DATASETS)

    def test_build_corpus_shapes(self):
        corpus = build_corpus(LINUX_SOURCE_MIX, n_chunks=8, chunk_size=2048)
        assert len(corpus) == 8
        assert all(len(c) == 2048 for c in corpus)

    def test_linux_more_compressible_than_firefox(self):
        """Fig 2: the Linux-source corpus compresses better than Firefox."""
        import zlib

        def ratio(mix):
            corpus = build_corpus(mix, n_chunks=48, chunk_size=4096)
            total = sum(len(c) for c in corpus)
            comp = sum(len(zlib.compress(c, 6)) for c in corpus)
            return total / comp

        assert ratio(LINUX_SOURCE_MIX) > ratio(FIREFOX_MIX)

    def test_enterprise_has_incompressible_fraction(self):
        """El-Shimi et al.: roughly a third of blocks do not compress."""
        store = ContentStore(ENTERPRISE_MIX, pool_blocks=256, seed=5)
        stats = store.pool_stats()
        incompressible = stats.get("random", 0) + stats.get("compressed", 0)
        assert 0.15 <= incompressible / 256 <= 0.45
