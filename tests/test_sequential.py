"""Tests for the Sequentiality Detector, including the paper's Fig 7 example."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sequential import PendingRun, SequentialityDetector

BS = 4096


def sd(max_merge=16):
    return SequentialityDetector(block_size=BS, max_merge_blocks=max_merge)


class TestFig7WorkedExample:
    """The exact flow of paper Fig 7(b).

    Order: write A1, A2, A3 (contiguous), B1, B2 (contiguous), C1, D1.
    SD actions: wait; merge; merge; compress A1-3; merge B; compress B1-2;
    compress C1.  D1 remains pending at the end.
    """

    def test_flow(self):
        d = sd()
        a1, a2, a3 = 0, BS, 2 * BS
        b1, b2 = 10 * BS, 11 * BS
        c1 = 20 * BS
        d1 = 30 * BS

        assert d.on_write(a1, BS, 1.0) == []          # 1: wait
        assert d.on_write(a2, BS, 2.0) == []          # 2: merge A1&A2
        assert d.on_write(a3, BS, 3.0) == []          # 3: merge A1-2&A3
        flushed = d.on_write(b1, BS, 4.0)             # 4: compress A1-3
        assert len(flushed) == 1
        assert flushed[0].start_lba == a1
        assert flushed[0].nbytes == 3 * BS
        assert flushed[0].n_merged == 3
        assert d.on_write(b2, BS, 5.0) == []          # 5: merge B1&B2
        flushed = d.on_write(c1, BS, 6.0)             # 6: compress B1-2
        assert flushed[0].start_lba == b1
        assert flushed[0].nbytes == 2 * BS
        flushed = d.on_write(d1, BS, 7.0)             # 7: compress C1
        assert flushed[0].start_lba == c1
        assert flushed[0].nbytes == BS
        assert d.pending is not None and d.pending.start_lba == d1

    def test_stats_after_fig7(self):
        d = sd()
        for i, lba in enumerate([0, BS, 2 * BS, 10 * BS, 11 * BS, 20 * BS, 30 * BS]):
            d.on_write(lba, BS, float(i))
        assert d.stats.writes_seen == 7
        assert d.stats.merges == 3
        assert d.stats.flushes_on_gap == 3


class TestReadsBreakContiguity:
    def test_read_flushes_pending(self):
        d = sd()
        d.on_write(0, BS, 1.0)
        flushed = d.on_read()
        assert len(flushed) == 1
        assert d.pending is None
        assert d.stats.flushes_on_read == 1

    def test_read_with_nothing_pending(self):
        assert sd().on_read() == []


class TestMergeLimit:
    def test_run_flushes_at_limit(self):
        d = sd(max_merge=4)
        flushed = []
        for i in range(4):
            flushed += d.on_write(i * BS, BS, float(i))
        assert len(flushed) == 1
        assert flushed[0].nbytes == 4 * BS
        assert d.pending is None
        assert d.stats.flushes_on_limit == 1

    def test_oversized_single_write_flushes_immediately(self):
        d = sd(max_merge=4)
        flushed = d.on_write(0, 4 * BS, 0.0)
        assert len(flushed) == 1
        assert d.pending is None

    def test_write_that_would_exceed_limit_starts_new_run(self):
        d = sd(max_merge=4)
        d.on_write(0, 3 * BS, 0.0)
        flushed = d.on_write(3 * BS, 2 * BS, 1.0)  # would make 5 > 4
        assert len(flushed) == 1
        assert flushed[0].nbytes == 3 * BS
        assert d.pending.nbytes == 2 * BS


class TestTimeoutAndFlushAll:
    def test_flush_timeout(self):
        d = sd()
        d.on_write(0, BS, 0.0)
        runs = d.flush_timeout()
        assert len(runs) == 1
        assert d.stats.flushes_on_timeout == 1

    def test_flush_all_not_counted_as_timeout(self):
        d = sd()
        d.on_write(0, BS, 0.0)
        d.flush_all()
        assert d.stats.flushes_on_timeout == 0

    def test_flush_empty(self):
        assert sd().flush_timeout() == []
        assert sd().flush_all() == []


class TestRunMetadata:
    def test_arrivals_and_refs_tracked(self):
        d = sd()
        d.on_write(0, BS, 1.5, ref="req-a")
        d.on_write(BS, BS, 2.5, ref="req-b")
        run = d.flush_all()[0]
        assert run.arrivals == [1.5, 2.5]
        assert run.refs == ["req-a", "req-b"]

    def test_non_contiguous_gap_detected(self):
        d = sd()
        d.on_write(0, BS, 0.0)
        flushed = d.on_write(5 * BS, BS, 1.0)  # gap
        assert len(flushed) == 1
        assert d.stats.flushes_on_gap == 1

    def test_backwards_write_not_merged(self):
        d = sd()
        d.on_write(5 * BS, BS, 0.0)
        flushed = d.on_write(0, BS, 1.0)
        assert len(flushed) == 1

    def test_overlapping_write_not_merged(self):
        d = sd()
        d.on_write(0, 2 * BS, 0.0)
        flushed = d.on_write(BS, BS, 1.0)  # overlaps pending run
        assert len(flushed) == 1

    def test_run_blocks_histogram(self):
        d = sd()
        for lba in (0, BS):
            d.on_write(lba, BS, 0.0)
        d.on_read()
        assert d.stats.run_blocks == {2: 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialityDetector(block_size=0)
        with pytest.raises(ValueError):
            SequentialityDetector(max_merge_blocks=0)
        with pytest.raises(ValueError):
            sd().on_write(0, 0, 0.0)


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),  # block number
                st.integers(min_value=1, max_value=4),   # blocks in request
                st.booleans(),                           # is read
            ),
            max_size=100,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_every_write_flushed_exactly_once(self, ops):
        d = sd(max_merge=8)
        flushed_bytes = 0
        written_bytes = 0
        for i, (block, nblocks, is_read) in enumerate(ops):
            if is_read:
                for run in d.on_read():
                    flushed_bytes += run.nbytes
            else:
                nbytes = nblocks * BS
                written_bytes += nbytes
                for run in d.on_write(block * BS, nbytes, float(i)):
                    flushed_bytes += run.nbytes
        for run in d.flush_all():
            flushed_bytes += run.nbytes
        assert flushed_bytes == written_bytes
        assert d.pending is None

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_flushed_runs_are_contiguous(self, blocks):
        d = sd()
        runs = []
        for i, b in enumerate(blocks):
            runs += d.on_write(b * BS, BS, float(i))
        runs += d.flush_all()
        for run in runs:
            assert run.nbytes % BS == 0
            assert run.n_merged == run.nbytes // BS
