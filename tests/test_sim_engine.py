"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert sim.now == 2.5

    def test_run_until_advances_clock_exactly(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert sim.pending == 1

    def test_run_until_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append(3))
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_zero_delay_runs_after_current_instant_events(self):
        sim = Simulator()
        order = []
        sim.schedule(0.0, lambda: order.append("a"))
        sim.schedule(0.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_event_scheduled_from_event(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(1.0, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append(1))
        assert sim.cancel(h) is True
        sim.run()
        assert fired == []

    def test_cancel_returns_false_for_fired_event(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.cancel(h) is False

    def test_double_cancel_returns_false(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        assert sim.cancel(h)
        assert not sim.cancel(h)

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("keep1"))
        h = sim.schedule(1.0, lambda: fired.append("drop"))
        sim.schedule(1.0, lambda: fired.append("keep2"))
        sim.cancel(h)
        sim.run()
        assert fired == ["keep1", "keep2"]


class TestAccounting:
    def test_pending_and_dispatched_counts(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.pending == 5
        assert sim.dispatched == 0
        sim.run()
        assert sim.pending == 0
        assert sim.dispatched == 5

    def test_cancelled_events_not_dispatched(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(h)
        sim.run()
        assert sim.dispatched == 1

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False

    def test_step_dispatches_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]


class TestDaemonEvents:
    def test_daemon_does_not_keep_run_alive(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("fg"))
        sim.schedule(0.5, lambda: fired.append("daemon"), daemon=True)
        sim.schedule(2.0, lambda: fired.append("late-daemon"), daemon=True)
        sim.run()
        # the daemon before the last foreground event fires; the one
        # after it does not (nothing foreground left to serve)
        assert fired == ["daemon", "fg"]
        assert sim.now == 1.0

    def test_daemon_only_heap_runs_nothing(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None, daemon=True)
        sim.run()
        assert sim.now == 0.0
        assert sim.dispatched == 0

    def test_run_until_still_fires_daemons(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1), daemon=True)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_pending_foreground_excludes_daemons(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(1.0, lambda: None, daemon=True)
        assert sim.pending_foreground == 1

    def test_cancelled_foreground_releases_run(self):
        sim = Simulator()
        h = sim.schedule(5.0, lambda: None)
        sim.schedule(1.0, lambda: None, daemon=True)
        sim.cancel(h)
        sim.run()  # nothing foreground left: returns immediately
        assert sim.now == 0.0


class TestPeriodicEvent:
    def test_every_fires_between_foreground_work(self):
        sim = Simulator()
        ticks = []
        ev = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]
        assert ev.fired == 3

    def test_cancel_stops_rescheduling(self):
        sim = Simulator()
        ticks = []
        ev = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(1.5, ev.cancel)
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert ticks == [1.0]
        assert ev.cancelled

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)
