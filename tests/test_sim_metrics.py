"""Tests for latency recorders, time series and window rates."""

import numpy as np
import pytest

from repro.sim.metrics import LatencyRecorder, TimeSeries, WindowRate


class TestLatencyRecorder:
    def test_empty_stats_are_zero(self):
        r = LatencyRecorder()
        assert r.count == 0
        assert r.mean() == 0.0
        assert r.max() == 0.0
        assert r.total() == 0.0

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError, match="empty recorder"):
            LatencyRecorder().percentile(99)

    def test_nan_sample_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            LatencyRecorder().add(float("nan"))

    def test_mean(self):
        r = LatencyRecorder()
        r.extend([1.0, 2.0, 3.0])
        assert r.mean() == pytest.approx(2.0)

    def test_percentiles(self):
        r = LatencyRecorder()
        r.extend(float(i) for i in range(1, 101))
        assert r.percentile(50) == pytest.approx(50.5)
        assert r.percentile(0) == 1.0
        assert r.percentile(100) == 100.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(101)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().add(-1.0)

    def test_min_max_total(self):
        r = LatencyRecorder()
        r.extend([0.5, 2.5, 1.0])
        assert r.min() == 0.5
        assert r.max() == 2.5
        assert r.total() == pytest.approx(4.0)

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean() == pytest.approx(2.0)

    def test_samples_returns_copy_as_array(self):
        r = LatencyRecorder()
        r.extend([1.0, 2.0])
        s = r.samples()
        assert isinstance(s, np.ndarray)
        s[0] = 99.0
        assert r.mean() == pytest.approx(1.5)


class TestTimeSeries:
    def test_empty(self):
        ts = TimeSeries()
        assert ts.empty
        edges, sums = ts.bins()
        assert len(edges) == 0

    def test_binning(self):
        ts = TimeSeries(bin_width=1.0)
        ts.add(0.2, 1.0)
        ts.add(0.9, 2.0)
        ts.add(2.5, 5.0)
        edges, sums = ts.bins()
        assert list(edges) == [0.0, 1.0, 2.0]
        assert list(sums) == [3.0, 0.0, 5.0]

    def test_rates_divide_by_width(self):
        ts = TimeSeries(bin_width=0.5)
        ts.add(0.1, 3.0)
        _, rates = ts.rates()
        assert rates[0] == pytest.approx(6.0)

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            TimeSeries(bin_width=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().add(-1.0)


class TestWindowRate:
    def test_rate_within_window(self):
        w = WindowRate(window=1.0)
        for t in (0.1, 0.2, 0.3):
            w.record(t, 1.0)
        assert w.rate(0.3) == pytest.approx(3.0)

    def test_old_events_expire(self):
        w = WindowRate(window=1.0)
        w.record(0.0, 10.0)
        w.record(2.0, 1.0)
        assert w.rate(2.0) == pytest.approx(1.0)

    def test_weighted_events(self):
        w = WindowRate(window=2.0)
        w.record(0.5, 4.0)
        w.record(1.0, 2.0)
        assert w.rate(1.0) == pytest.approx(3.0)

    def test_rate_queried_later_expires(self):
        w = WindowRate(window=1.0)
        w.record(0.0, 5.0)
        assert w.rate(0.5) == pytest.approx(5.0)
        assert w.rate(1.5) == pytest.approx(0.0)

    def test_event_exactly_at_window_edge_expires(self):
        w = WindowRate(window=1.0)
        w.record(0.0, 1.0)
        assert w.rate(1.0) == pytest.approx(0.0)

    def test_non_monotonic_rejected(self):
        w = WindowRate()
        w.record(1.0)
        with pytest.raises(ValueError):
            w.record(0.5)

    def test_reset(self):
        w = WindowRate()
        w.record(0.5, 3.0)
        w.reset()
        assert w.rate(0.5) == 0.0
        w.record(0.1)  # allowed again after reset

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowRate(window=0.0)

    def test_total_in_window(self):
        w = WindowRate(window=1.0)
        w.record(0.0, 2.0)
        w.record(0.5, 3.0)
        assert w.total_in_window(0.5) == pytest.approx(5.0)
        assert w.total_in_window(1.2) == pytest.approx(3.0)


class TestApproxPercentiles:
    def test_small_n_is_exact(self):
        r = LatencyRecorder(approx_threshold=100)
        samples = np.arange(1, 101) / 1000.0
        for v in samples:
            r.add(float(v))
        assert not r.uses_approx
        assert r.percentile(50) == pytest.approx(
            float(np.percentile(samples, 50)), rel=0, abs=0
        )

    def test_large_n_routes_through_histogram(self):
        r = LatencyRecorder(approx_threshold=64)
        rng = np.random.default_rng(1)
        samples = rng.lognormal(mean=-7.0, sigma=1.0, size=2000)
        for v in samples:
            r.add(float(v))
        assert r.uses_approx
        exact = float(np.percentile(samples, 95))
        # log2 x 32 sub-buckets: relative quantile error <= 1/32
        assert r.percentile(95) == pytest.approx(exact, rel=0.05)

    def test_mean_stays_exact_above_threshold(self):
        r = LatencyRecorder(approx_threshold=10)
        samples = [0.001 * (i + 1) for i in range(50)]
        for v in samples:
            r.add(v)
        assert r.uses_approx
        assert r.mean() == pytest.approx(sum(samples) / len(samples))
        assert r.total() == pytest.approx(sum(samples))

    def test_threshold_none_always_exact(self):
        r = LatencyRecorder(approx_threshold=None)
        for v in range(1, 10001):
            r.add(v / 1e6)
        assert not r.uses_approx

    def test_merge_merges_histograms(self):
        a = LatencyRecorder(approx_threshold=10)
        b = LatencyRecorder(approx_threshold=10)
        for v in range(1, 21):
            a.add(v / 1000.0)
            b.add(v / 100.0)
        a.merge(b)
        assert a.count == 40
        assert a.uses_approx
        assert a.max() == pytest.approx(0.2, rel=0.05)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            LatencyRecorder(approx_threshold=0)
