"""Tests for latency recorders, time series and window rates."""

import numpy as np
import pytest

from repro.sim.metrics import LatencyRecorder, TimeSeries, WindowRate


class TestLatencyRecorder:
    def test_empty_stats_are_zero(self):
        r = LatencyRecorder()
        assert r.count == 0
        assert r.mean() == 0.0
        assert r.max() == 0.0
        assert r.total() == 0.0

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError, match="empty recorder"):
            LatencyRecorder().percentile(99)

    def test_nan_sample_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            LatencyRecorder().add(float("nan"))

    def test_mean(self):
        r = LatencyRecorder()
        r.extend([1.0, 2.0, 3.0])
        assert r.mean() == pytest.approx(2.0)

    def test_percentiles(self):
        r = LatencyRecorder()
        r.extend(float(i) for i in range(1, 101))
        assert r.percentile(50) == pytest.approx(50.5)
        assert r.percentile(0) == 1.0
        assert r.percentile(100) == 100.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(101)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().add(-1.0)

    def test_min_max_total(self):
        r = LatencyRecorder()
        r.extend([0.5, 2.5, 1.0])
        assert r.min() == 0.5
        assert r.max() == 2.5
        assert r.total() == pytest.approx(4.0)

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean() == pytest.approx(2.0)

    def test_samples_returns_copy_as_array(self):
        r = LatencyRecorder()
        r.extend([1.0, 2.0])
        s = r.samples()
        assert isinstance(s, np.ndarray)
        s[0] = 99.0
        assert r.mean() == pytest.approx(1.5)


class TestTimeSeries:
    def test_empty(self):
        ts = TimeSeries()
        assert ts.empty
        edges, sums = ts.bins()
        assert len(edges) == 0

    def test_binning(self):
        ts = TimeSeries(bin_width=1.0)
        ts.add(0.2, 1.0)
        ts.add(0.9, 2.0)
        ts.add(2.5, 5.0)
        edges, sums = ts.bins()
        assert list(edges) == [0.0, 1.0, 2.0]
        assert list(sums) == [3.0, 0.0, 5.0]

    def test_rates_divide_by_width(self):
        ts = TimeSeries(bin_width=0.5)
        ts.add(0.1, 3.0)
        _, rates = ts.rates()
        assert rates[0] == pytest.approx(6.0)

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            TimeSeries(bin_width=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().add(-1.0)


class TestWindowRate:
    def test_rate_within_window(self):
        w = WindowRate(window=1.0)
        for t in (0.1, 0.2, 0.3):
            w.record(t, 1.0)
        assert w.rate(0.3) == pytest.approx(3.0)

    def test_old_events_expire(self):
        w = WindowRate(window=1.0)
        w.record(0.0, 10.0)
        w.record(2.0, 1.0)
        assert w.rate(2.0) == pytest.approx(1.0)

    def test_weighted_events(self):
        w = WindowRate(window=2.0)
        w.record(0.5, 4.0)
        w.record(1.0, 2.0)
        assert w.rate(1.0) == pytest.approx(3.0)

    def test_rate_queried_later_expires(self):
        w = WindowRate(window=1.0)
        w.record(0.0, 5.0)
        assert w.rate(0.5) == pytest.approx(5.0)
        assert w.rate(1.5) == pytest.approx(0.0)

    def test_event_exactly_at_window_edge_expires(self):
        w = WindowRate(window=1.0)
        w.record(0.0, 1.0)
        assert w.rate(1.0) == pytest.approx(0.0)

    def test_non_monotonic_rejected(self):
        w = WindowRate()
        w.record(1.0)
        with pytest.raises(ValueError):
            w.record(0.5)

    def test_reset(self):
        w = WindowRate()
        w.record(0.5, 3.0)
        w.reset()
        assert w.rate(0.5) == 0.0
        w.record(0.1)  # allowed again after reset

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowRate(window=0.0)

    def test_total_in_window(self):
        w = WindowRate(window=1.0)
        w.record(0.0, 2.0)
        w.record(0.5, 3.0)
        assert w.total_in_window(0.5) == pytest.approx(5.0)
        assert w.total_in_window(1.2) == pytest.approx(3.0)
