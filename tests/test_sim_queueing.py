"""Tests for the FIFO queueing server."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.queueing import Server


@pytest.fixture
def sim():
    return Simulator()


class TestSingleServer:
    def test_single_job_completes_after_service(self, sim):
        srv = Server(sim)
        job = srv.submit(1.5)
        sim.run()
        assert job.start == 0.0
        assert job.completion == 1.5
        assert job.response == 1.5
        assert job.wait == 0.0

    def test_fifo_order(self, sim):
        srv = Server(sim)
        done = []
        for i in range(3):
            srv.submit(1.0, on_complete=lambda j, i=i: done.append(i))
        sim.run()
        assert done == [0, 1, 2]

    def test_second_job_waits_for_first(self, sim):
        srv = Server(sim)
        j1 = srv.submit(2.0)
        j2 = srv.submit(1.0)
        sim.run()
        assert j1.completion == 2.0
        assert j2.start == 2.0
        assert j2.completion == 3.0
        assert j2.wait == 2.0

    def test_zero_service_time_allowed(self, sim):
        srv = Server(sim)
        job = srv.submit(0.0)
        sim.run()
        assert job.completion == 0.0

    def test_negative_service_time_rejected(self, sim):
        with pytest.raises(ValueError):
            Server(sim).submit(-1.0)

    def test_idle_period_between_jobs(self, sim):
        srv = Server(sim)
        srv.submit(1.0)
        sim.schedule(5.0, lambda: srv.submit(1.0, on_complete=lambda j: None))
        sim.run()
        assert sim.now == 6.0
        assert srv.stats.busy_time == pytest.approx(2.0)


class TestMultiServer:
    def test_parallel_service(self, sim):
        srv = Server(sim, servers=2)
        j1 = srv.submit(1.0)
        j2 = srv.submit(1.0)
        sim.run()
        assert j1.completion == 1.0
        assert j2.completion == 1.0

    def test_third_job_queues_behind_two(self, sim):
        srv = Server(sim, servers=2)
        srv.submit(2.0)
        srv.submit(3.0)
        j3 = srv.submit(1.0)
        sim.run()
        assert j3.start == 2.0  # first server frees at t=2
        assert j3.completion == 3.0

    def test_invalid_server_count(self, sim):
        with pytest.raises(ValueError):
            Server(sim, servers=0)


class TestStats:
    def test_counts(self, sim):
        srv = Server(sim)
        for _ in range(4):
            srv.submit(0.5)
        sim.run()
        assert srv.stats.submitted == 4
        assert srv.stats.completed == 4

    def test_busy_time_accumulates(self, sim):
        srv = Server(sim)
        srv.submit(1.0)
        srv.submit(2.0)
        sim.run()
        assert srv.stats.busy_time == pytest.approx(3.0)

    def test_utilization_full_when_back_to_back(self, sim):
        srv = Server(sim)
        srv.submit(1.0)
        srv.submit(1.0)
        sim.run()
        assert srv.utilization() == pytest.approx(1.0)

    def test_utilization_fraction(self, sim):
        srv = Server(sim)
        srv.submit(1.0)
        sim.schedule(4.0, lambda: None)  # extend the horizon
        sim.run()
        assert srv.utilization() == pytest.approx(0.25)

    def test_total_wait(self, sim):
        srv = Server(sim)
        srv.submit(1.0)
        srv.submit(1.0)
        srv.submit(1.0)
        sim.run()
        assert srv.stats.total_wait == pytest.approx(0.0 + 1.0 + 2.0)

    def test_max_queue_len(self, sim):
        srv = Server(sim)
        for _ in range(5):
            srv.submit(1.0)
        assert srv.stats.max_queue_len == 4  # one went straight into service
        sim.run()

    def test_queue_state_properties(self, sim):
        srv = Server(sim)
        assert not srv.busy
        srv.submit(1.0)
        srv.submit(1.0)
        assert srv.busy
        assert srv.in_service == 1
        assert srv.queue_length == 1
        sim.run()
        assert not srv.busy


class TestCallbacks:
    def test_callback_sees_completion_time(self, sim):
        srv = Server(sim)
        seen = []
        srv.submit(1.0, on_complete=lambda j: seen.append(sim.now))
        sim.run()
        assert seen == [1.0]

    def test_callback_can_submit_more_work(self, sim):
        srv = Server(sim)
        done = []

        def chain(job):
            if len(done) < 3:
                done.append(sim.now)
                srv.submit(1.0, on_complete=chain)

        srv.submit(1.0, on_complete=chain)
        sim.run()
        assert done == [1.0, 2.0, 3.0]

    def test_tag_preserved(self, sim):
        srv = Server(sim)
        seen = []
        srv.submit(1.0, on_complete=lambda j: seen.append(j.tag), tag=("W", 42))
        sim.run()
        assert seen == [("W", 42)]
