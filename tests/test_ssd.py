"""Tests for the simulated SSD device model."""

import pytest

from repro.flash.geometry import NandGeometry, NandTiming, x25e_like
from repro.flash.ssd import SimulatedSSD
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def ssd(sim):
    return SimulatedSSD(sim, geometry=x25e_like(32))


class TestServiceTimes:
    def test_write_linear_in_size(self, ssd):
        """Paper Fig 1: response time grows linearly with request size."""
        t4 = ssd.service_write_time(4096)
        t8 = ssd.service_write_time(8192)
        t12 = ssd.service_write_time(12288)
        assert (t8 - t4) == pytest.approx(t12 - t8)
        assert t12 > t8 > t4

    def test_read_linear_in_size(self, ssd):
        t4 = ssd.service_read_time(4096)
        t8 = ssd.service_read_time(8192)
        assert t8 - t4 == pytest.approx(4096 / ssd.timing.read_bytes_per_s)

    def test_zero_byte_costs_overhead_only(self, ssd):
        assert ssd.service_write_time(0) == pytest.approx(ssd.timing.write_overhead_s)
        assert ssd.service_read_time(0) == pytest.approx(ssd.timing.read_overhead_s)

    def test_negative_size_rejected(self, ssd):
        with pytest.raises(ValueError):
            ssd.service_read_time(-1)
        with pytest.raises(ValueError):
            ssd.service_write_time(-1)

    def test_write_slower_than_read(self, ssd):
        assert ssd.service_write_time(4096) > ssd.service_read_time(4096)


class TestSubmission:
    def test_write_completes(self, sim, ssd):
        done = []
        ssd.submit_write(0, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(ssd.service_write_time(4096))]

    def test_read_completes(self, sim, ssd):
        done = []
        ssd.submit_read(0, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(ssd.service_read_time(4096))]

    def test_queueing_serialises_requests(self, sim, ssd):
        done = []
        for i in range(3):
            ssd.submit_write(i * 4096, 4096, on_complete=lambda: done.append(sim.now))
        sim.run()
        svc = ssd.service_write_time(4096)
        assert done == [pytest.approx(svc * (k + 1)) for k in range(3)]

    def test_read_of_unwritten_key_allowed(self, sim, ssd):
        done = []
        ssd.submit_read(12345, 4096, on_complete=lambda: done.append(1))
        sim.run()
        assert done == [1]

    def test_stats_counters(self, sim, ssd):
        ssd.submit_write(0, 4096)
        ssd.submit_read(0, 2048)
        sim.run()
        assert ssd.stats.writes == 1
        assert ssd.stats.reads == 1
        assert ssd.stats.bytes_written == 4096
        assert ssd.stats.bytes_read == 2048

    def test_default_key_is_lba(self, sim, ssd):
        ssd.submit_write(8192, 1000)
        sim.run()
        assert ssd.ftl.contains(8192)

    def test_explicit_key(self, sim, ssd):
        ssd.submit_write(0, 1000, key="mykey")
        sim.run()
        assert ssd.ftl.contains("mykey")
        assert not ssd.ftl.contains(0)

    def test_trim(self, sim, ssd):
        ssd.submit_write(0, 1000, key="k")
        sim.run()
        assert ssd.trim("k")
        assert not ssd.ftl.contains("k")


class TestGcCoupling:
    def test_overwrite_churn_causes_gc_stalls(self, sim):
        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=16, op_ratio=0.25)
        ssd = SimulatedSSD(sim, geometry=geo)
        for i in range(200):
            ssd.submit_write((i % 4) * 4096, 4096)
        sim.run()
        assert ssd.stats.gc_stall_time > 0
        assert ssd.write_amplification() >= 1.0

    def test_gc_disabled_charges_no_stall(self, sim):
        geo = NandGeometry(page_size=4096, pages_per_block=8, nblocks=16, op_ratio=0.25)
        ssd = SimulatedSSD(sim, geometry=geo, gc_enabled=False)
        for i in range(200):
            ssd.submit_write((i % 4) * 4096, 4096)
        sim.run()
        assert ssd.stats.gc_stall_time == 0.0

    def test_gc_time_computation(self, ssd):
        from repro.flash.ftl import FlashCost

        t = ssd.gc_time(FlashCost(moved_bytes=8192, erases=1))
        expected = (
            2 * (ssd.timing.t_read_page_us + ssd.timing.t_program_page_us)
            + ssd.timing.t_erase_block_us
        ) * 1e-6
        assert t == pytest.approx(expected)

    def test_gc_time_zero_for_pure_host_write(self, ssd):
        from repro.flash.ftl import FlashCost

        assert ssd.gc_time(FlashCost(host_bytes=4096)) == 0.0


class TestUtilization:
    def test_utilization_reflects_busy_fraction(self, sim, ssd):
        ssd.submit_write(0, 4096)
        sim.run()
        horizon = sim.now
        assert ssd.utilization() == pytest.approx(1.0)
        sim.schedule(horizon, lambda: None)  # idle for the same span again
        sim.run()
        assert ssd.utilization() == pytest.approx(0.5)
