"""Tests for CompressionStats, EDCConfig, and the Request Distributer."""

import pytest

from repro.core.config import EDCConfig
from repro.core.distributer import RequestDistributer
from repro.core.stats import CompressionStats
from repro.flash.geometry import x25e_like
from repro.flash.ssd import SimulatedSSD
from repro.sim.engine import Simulator


class TestCompressionStats:
    def test_empty(self):
        s = CompressionStats()
        assert s.compression_ratio == 1.0
        assert s.payload_ratio == 1.0
        assert s.space_saving == 0.0
        assert s.codec_shares() == {}

    def test_note_write_accumulates(self):
        s = CompressionStats()
        s.note_write("gzip", 4096, 1500, 2048, compressed=True, merged=False)
        s.note_write("none", 4096, 4096, 4096, compressed=False, merged=False)
        assert s.writes == 2
        assert s.compressed_writes == 1
        assert s.logical_bytes == 8192
        assert s.stored_bytes == 6144
        assert s.compression_ratio == pytest.approx(8192 / 6144)
        assert s.payload_ratio == pytest.approx(8192 / 5596)
        assert s.space_saving == pytest.approx(1 - 6144 / 8192)

    def test_codec_shares(self):
        s = CompressionStats()
        for _ in range(3):
            s.note_write("lzf", 4096, 2000, 2048, True, False)
        s.note_write("gzip", 4096, 1000, 1024, True, False)
        shares = s.codec_shares()
        assert shares["lzf"] == pytest.approx(0.75)
        assert shares["gzip"] == pytest.approx(0.25)

    def test_merged_counter(self):
        s = CompressionStats()
        s.note_write("lzf", 8192, 3000, 4096, True, merged=True)
        assert s.merged_runs == 1

    def test_stored_ratio_includes_rounding(self):
        """The paper's ratio is as-stored: size-class rounding included."""
        s = CompressionStats()
        s.note_write("gzip", 4096, 1100, 2048, True, False)
        assert s.compression_ratio == pytest.approx(2.0)
        assert s.payload_ratio > s.compression_ratio


class TestEDCConfig:
    def test_defaults_follow_paper(self):
        cfg = EDCConfig()
        assert cfg.block_size == 4096  # Linux page size (§III-D)
        assert cfg.size_class_fractions == (0.25, 0.50, 0.75, 1.0)  # §III-C
        assert cfg.sd_enabled
        assert cfg.compressibility_gate

    @pytest.mark.parametrize(
        "kw",
        [
            dict(block_size=0),
            dict(monitor_window=0.0),
            dict(sd_max_merge_blocks=0),
            dict(sd_flush_timeout=0.0),
            dict(cpu_threads=0),
            dict(verify_reads=True, store_payloads=False),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            EDCConfig(**kw)

    def test_frozen(self):
        with pytest.raises(Exception):
            EDCConfig().block_size = 8192


class TestRequestDistributer:
    @pytest.fixture
    def setup(self):
        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        return sim, ssd, RequestDistributer(ssd)

    def test_write_reaches_backend(self, setup):
        sim, ssd, dist = setup
        done = []
        dist.write("k", 0, 2048, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert done
        assert ssd.ftl.contains("k")
        assert dist.stats.issued_writes == 1
        assert dist.stats.written_bytes == 2048

    def test_read_reaches_backend(self, setup):
        sim, ssd, dist = setup
        dist.read("k", 0, 1024)
        sim.run()
        assert ssd.stats.reads == 1
        assert dist.stats.read_bytes == 1024

    def test_trim_forwards(self, setup):
        sim, ssd, dist = setup
        dist.write("k", 0, 2048)
        sim.run()
        assert dist.trim("k")
        assert dist.stats.trims == 1
        assert not ssd.ftl.contains("k")

    def test_invalid_sizes(self, setup):
        _, _, dist = setup
        with pytest.raises(ValueError):
            dist.write("k", 0, 0)
        with pytest.raises(ValueError):
            dist.read("k", 0, -5)
