"""Tests for the zlib/bz2/lzma wrappers and the Null codec."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.codec import CodecError
from repro.compression.stdcodecs import Bz2Codec, LzmaCodec, NullCodec, ZlibCodec

ALL = [NullCodec(), ZlibCodec(), Bz2Codec(), LzmaCodec(), ZlibCodec("zlib-1", 6, 1)]


@pytest.mark.parametrize("codec", ALL, ids=lambda c: c.name)
class TestRoundTrip:
    def test_text(self, codec):
        data = b"compression wrapper test " * 64
        assert codec.decompress(codec.compress(data), len(data)) == data

    def test_random(self, codec):
        data = os.urandom(2048)
        assert codec.decompress(codec.compress(data), len(data)) == data

    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b""), 0) == b""

    def test_size_mismatch_detected(self, codec):
        comp = codec.compress(b"hello world")
        with pytest.raises(CodecError):
            codec.decompress(comp, 3)


class TestNull:
    def test_identity(self):
        data = os.urandom(128)
        assert NullCodec().compress(data) == data

    def test_tag_zero(self):
        assert NullCodec().tag == 0


class TestZlib:
    def test_level_affects_output_size(self):
        data = (b"abcdefgh" * 100 + os.urandom(50)) * 20
        fast = ZlibCodec("z1", 6, level=1).compress(data)
        best = ZlibCodec("z9", 7, level=9).compress(data)
        assert len(best) <= len(fast)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            ZlibCodec(level=0)
        with pytest.raises(ValueError):
            ZlibCodec(level=10)

    def test_garbage_input_raises_codec_error(self):
        with pytest.raises(CodecError):
            ZlibCodec().decompress(b"not zlib data")


class TestBz2:
    def test_best_ratio_on_large_text(self):
        # BWT needs volume and literal diversity: bzip2's advantage over
        # DEFLATE shows on large natural-ish text, not tiny repetitive data.
        import numpy as np

        from repro.sdgen.chunks import TextChunk

        data = TextChunk().generate(np.random.default_rng(3), 262144)
        z = ZlibCodec().compress(data)
        b = Bz2Codec().compress(data)
        assert len(b) < len(z)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            Bz2Codec(level=0)

    def test_garbage_raises(self):
        with pytest.raises(CodecError):
            Bz2Codec().decompress(b"\x00\x01\x02")


class TestLzma:
    def test_invalid_preset(self):
        with pytest.raises(ValueError):
            LzmaCodec(preset=10)

    def test_garbage_raises(self):
        with pytest.raises(CodecError):
            LzmaCodec().decompress(b"bogus")


class TestRatioHierarchy:
    """The Fig 2 ordering the paper's design rests on."""

    def test_bzip2_beats_gzip_beats_fast_codecs_on_text(self):
        import numpy as np

        from repro.compression.lzf import lzf_compress
        from repro.sdgen.chunks import TextChunk

        data = TextChunk().generate(np.random.default_rng(3), 262144)
        sizes = {
            "bzip2": len(Bz2Codec().compress(data)),
            "gzip": len(ZlibCodec().compress(data)),
            "lzf": len(lzf_compress(data)),
        }
        assert sizes["bzip2"] < sizes["gzip"] < sizes["lzf"]


class TestPropertyBased:
    @given(st.binary(max_size=1024))
    @settings(max_examples=50, deadline=None)
    def test_zlib_round_trip(self, data):
        c = ZlibCodec()
        assert c.decompress(c.compress(data), len(data)) == data

    @given(st.binary(max_size=512))
    @settings(max_examples=25, deadline=None)
    def test_bz2_round_trip(self, data):
        c = Bz2Codec()
        assert c.decompress(c.compress(data), len(data)) == data
