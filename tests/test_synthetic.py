"""Tests for the synthetic ON/OFF burst trace generator."""

import numpy as np
import pytest

from repro.traces.synthetic import BurstModel, SyntheticTraceGenerator, WorkloadParams


def params(**kw):
    defaults = dict(
        name="test",
        read_ratio=0.3,
        size_dist=((4096, 0.7), (8192, 0.3)),
        burst=BurstModel(
            on_iops=500.0, off_iops=10.0, on_duration_mean=1.0, off_duration_mean=4.0
        ),
        address_space=1 << 24,
    )
    defaults.update(kw)
    return WorkloadParams(**defaults)


class TestBurstModel:
    def test_mean_iops(self):
        b = BurstModel(on_iops=100, off_iops=0, on_duration_mean=1, off_duration_mean=1)
        assert b.mean_iops == pytest.approx(50.0)

    def test_on_levels_mean(self):
        b = BurstModel(on_levels=((100.0, 0.5), (300.0, 0.5)))
        assert b.mean_on_iops == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstModel(on_iops=0)
        with pytest.raises(ValueError):
            BurstModel(on_duration_mean=0)
        with pytest.raises(ValueError):
            BurstModel(on_levels=((100.0, 0.5), (200.0, 0.4)))  # probs != 1
        with pytest.raises(ValueError):
            BurstModel(on_levels=((0.0, 1.0),))
        with pytest.raises(ValueError):
            BurstModel(on_levels=())


class TestWorkloadParams:
    def test_mean_request_bytes(self):
        p = params()
        assert p.mean_request_bytes == pytest.approx(4096 * 0.7 + 8192 * 0.3)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(read_ratio=1.5),
            dict(size_dist=((4096, 0.5),)),
            dict(size_dist=((0, 1.0),)),
            dict(write_seq_prob=-0.1),
            dict(hot_fraction=0.0),
            dict(hot_weight=1.5),
            dict(address_space=100),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            params(**kw)


class TestGeneration:
    def test_requires_bound(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(params()).generate()

    def test_deterministic_per_seed(self):
        a = SyntheticTraceGenerator(params(), seed=1).generate(max_requests=500)
        b = SyntheticTraceGenerator(params(), seed=1).generate(max_requests=500)
        assert [(r.time, r.op, r.lba, r.nbytes) for r in a] == [
            (r.time, r.op, r.lba, r.nbytes) for r in b
        ]

    def test_different_seeds_differ(self):
        a = SyntheticTraceGenerator(params(), seed=1).generate(max_requests=200)
        b = SyntheticTraceGenerator(params(), seed=2).generate(max_requests=200)
        assert [r.lba for r in a] != [r.lba for r in b]

    def test_max_requests_respected(self):
        t = SyntheticTraceGenerator(params()).generate(max_requests=123)
        assert len(t) == 123

    def test_duration_respected(self):
        t = SyntheticTraceGenerator(params()).generate(duration=10.0)
        assert t.duration <= 10.0

    def test_timestamps_non_decreasing(self):
        t = SyntheticTraceGenerator(params()).generate(max_requests=1000)
        times = [r.time for r in t]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_read_ratio_approximated(self):
        t = SyntheticTraceGenerator(params(read_ratio=0.3), seed=0).generate(
            max_requests=4000
        )
        assert t.stats().read_ratio == pytest.approx(0.3, abs=0.05)

    def test_sizes_from_distribution(self):
        t = SyntheticTraceGenerator(params()).generate(max_requests=1000)
        assert {r.nbytes for r in t} <= {4096, 8192}

    def test_addresses_within_space(self):
        p = params()
        t = SyntheticTraceGenerator(p).generate(max_requests=2000)
        assert all(0 <= r.lba and r.end <= p.address_space for r in t)

    def test_addresses_block_aligned_for_random_accesses(self):
        p = params(write_seq_prob=0.0, read_seq_prob=0.0)
        t = SyntheticTraceGenerator(p).generate(max_requests=500)
        assert all(r.lba % p.block == 0 for r in t)

    def test_burstiness_visible(self):
        """ON/OFF structure produces high-variance per-second rates (Fig 3)."""
        p = params(
            burst=BurstModel(
                on_iops=500.0, off_iops=2.0, on_duration_mean=1.0, off_duration_mean=8.0
            )
        )
        t = SyntheticTraceGenerator(p, seed=3).generate(duration=60.0)
        _, rates = t.intensity_series(bin_width=1.0)
        assert rates.max() > 5 * max(rates.mean(), 1e-9)

    def test_sequential_continuations_cluster_in_time(self):
        p = params(write_seq_prob=0.9, read_seq_prob=0.0, read_ratio=0.0)
        t = SyntheticTraceGenerator(p, seed=5).generate(max_requests=2000)
        gaps = []
        for prev, cur in zip(t, list(t)[1:]):
            if cur.lba == prev.end:
                gaps.append(cur.time - prev.time)
        assert gaps, "expected sequential continuations"
        assert np.median(gaps) < 5 * p.seq_arrival_gap

    def test_hot_region_receives_more_traffic(self):
        p = params(hot_fraction=0.1, hot_weight=0.9, write_seq_prob=0.0, read_seq_prob=0.0)
        t = SyntheticTraceGenerator(p, seed=4).generate(max_requests=3000)
        hot_limit = int((1 << 24) * 0.1)
        hot = sum(1 for r in t if r.lba < hot_limit)
        assert hot / len(t) > 0.7

    def test_two_level_bursts_visible(self):
        p = params(
            burst=BurstModel(
                on_iops=500.0,
                off_iops=2.0,
                on_duration_mean=1.0,
                off_duration_mean=2.0,
                on_levels=((200.0, 0.5), (2000.0, 0.5)),
            )
        )
        t = SyntheticTraceGenerator(p, seed=11).generate(duration=120.0)
        _, rates = t.intensity_series(bin_width=0.5)
        busy = rates[rates > 50]
        assert busy.max() > 4 * np.median(busy)
