"""Tests for the telemetry subsystem: spans, histograms, probes, export.

The replay smoke test at the bottom checks the headline property of the
whole instrumentation design: on a single-SSD backend the per-layer
write breakdown (queue + estimate + compress + flash_program + gc_stall)
sums to the end-to-end response time within 1 %.
"""

import io
import json

import numpy as np
import pytest

from repro.bench.experiments import ReplayConfig, replay
from repro.sim.engine import Simulator
from repro.telemetry import (
    LAYERS,
    NULL_SPAN,
    NULL_TELEMETRY,
    PROBE_POINTS,
    Counter,
    Gauge,
    Log2Histogram,
    MetricsRegistry,
    NullTracer,
    ProbeRegistry,
    Telemetry,
    Tracer,
    ascii_flamegraph,
    dump_jsonl,
    layer_breakdown_rows,
    render_layer_breakdown,
    render_telemetry_summary,
)
from repro.traces.workloads import make_workload


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_timing_follows_sim_clock(self):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        spans = []

        def start():
            spans.append(tracer.start("write", layer="request"))

        def stop():
            tracer.finish(spans[0])

        sim.schedule(1.0, start)
        sim.schedule(3.5, stop)
        sim.run()
        (s,) = tracer.spans
        assert s.start == 1.0
        assert s.end == 3.5
        assert s.duration == pytest.approx(2.5)

    def test_nesting_via_parent_id(self):
        tracer = Tracer(lambda: 0.0)
        root = tracer.start("write")
        child = tracer.start("compress", layer="compress", parent=root)
        grandchild = tracer.start("estimate", layer="estimate", parent=child)
        for s in (grandchild, child, root):
            tracer.finish(s, end=1.0)
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id

    def test_record_is_start_plus_finish(self):
        tracer = Tracer(lambda: 99.0)  # clock must not be consulted
        s = tracer.record("queue.cpu", "queue", 1.0, 2.0, codec="lzf")
        assert (s.start, s.end) == (1.0, 2.0)
        assert s.tags == {"codec": "lzf"}
        assert len(tracer) == 1

    def test_end_before_start_rejected(self):
        tracer = Tracer(lambda: 5.0)
        s = tracer.start("x", start=10.0)
        with pytest.raises(ValueError):
            tracer.finish(s)  # now=5.0 < start

    def test_max_spans_drops_but_counts(self):
        tracer = Tracer(lambda: 0.0, max_spans=2)
        for _ in range(5):
            tracer.record("x", "request", 0.0, 1.0)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_layer_totals(self):
        tracer = Tracer(lambda: 0.0)
        tracer.record("a", "compress", 0.0, 2.0)
        tracer.record("b", "compress", 0.0, 1.0)
        tracer.record("c", "queue", 0.0, 4.0)
        totals = tracer.layer_totals()
        assert totals["compress"] == (2, pytest.approx(3.0))
        assert totals["queue"] == (1, pytest.approx(4.0))

    def test_null_tracer_is_inert(self):
        t = NullTracer()
        s = t.start("x")
        assert s is NULL_SPAN
        t.finish(s)
        assert len(t) == 0 and list(t) == []

    def test_layer_vocabulary(self):
        assert "request" in LAYERS
        assert "gc_stall" in LAYERS
        assert "read_decompress" in LAYERS

    def test_to_dict_round_trips_through_json(self):
        tracer = Tracer(lambda: 0.0)
        s = tracer.record("write", "request", 0.5, 1.25, lba=4096)
        d = json.loads(json.dumps(s.to_dict()))
        assert d["name"] == "write"
        assert d["duration"] == pytest.approx(0.75)
        assert d["tags"] == {"lba": 4096}


# ----------------------------------------------------------------------
# histograms / metrics
# ----------------------------------------------------------------------
class TestLog2Histogram:
    def test_percentiles_match_numpy_within_bucket_error(self):
        # 16 sub-buckets per decade bound relative error by 1/16 = 6.25 %.
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-8.0, sigma=1.5, size=5000)
        h = Log2Histogram(sub_buckets=16)
        for v in samples:
            h.add(float(v))
        for p in (50, 90, 95, 99, 99.9):
            exact = float(np.percentile(samples, p))
            approx = h.percentile(p)
            # extreme tail quantiles interpolate over very few order
            # statistics, so numpy's own estimate wobbles there too
            rel = 0.08 if p <= 99 else 0.15
            assert approx == pytest.approx(exact, rel=rel), f"p{p}"

    def test_exact_min_max_and_mean(self):
        h = Log2Histogram()
        for v in (0.001, 0.002, 0.004):
            h.add(v)
        assert h.min() == 0.001
        assert h.max() == 0.004
        assert h.percentile(0) == 0.001
        assert h.percentile(100) == 0.004
        assert h.mean() == pytest.approx(0.007 / 3)

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Log2Histogram().percentile(50)

    def test_nan_and_negative_rejected(self):
        h = Log2Histogram()
        with pytest.raises(ValueError):
            h.add(float("nan"))
        with pytest.raises(ValueError):
            h.add(-1.0)

    def test_zero_samples_land_in_zero_bucket(self):
        h = Log2Histogram()
        h.add(0.0, n=10)
        h.add(1.0)
        assert h.count == 11
        assert h.percentile(50) == 0.0
        assert h.percentile(100) == 1.0

    def test_merge(self):
        a, b = Log2Histogram(), Log2Histogram()
        a.add(0.001)
        b.add(0.1)
        a.merge(b)
        assert a.count == 2
        assert a.max() == 0.1
        with pytest.raises(ValueError):
            a.merge(Log2Histogram(sub_buckets=8))

    def test_quantile_labels(self):
        h = Log2Histogram()
        h.add(1.0)
        q = h.quantiles()
        assert set(q) == {"p50", "p95", "p99", "p99_9"}

    def test_memory_is_constant(self):
        h = Log2Histogram()
        for i in range(10_000):
            h.add(1e-6 * (1 + i % 997))
        assert len(h._counts) == (h.max_exp - h.min_exp) * h.sub_buckets


class TestCountersGaugesRegistry:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_watermarks(self):
        g = Gauge("x")
        g.set(5.0)
        g.set(1.0)
        g.set(3.0)
        assert (g.value, g.min, g.max) == (3.0, 1.0, 5.0)
        with pytest.raises(ValueError):
            g.set(float("nan"))

    def test_registry_creates_on_first_use(self):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.counter("a").inc()
        assert m.counter("a").value == 2.0
        m.histogram("h").add(1.0)
        d = m.as_dict()
        assert d["counters"]["a"] == 2.0
        assert d["histograms"]["h"]["count"] == 1.0


# ----------------------------------------------------------------------
# probe registry
# ----------------------------------------------------------------------
class TestProbeRegistry:
    def test_all_on_by_default(self):
        p = ProbeRegistry()
        assert all(p.active(name) for name in PROBE_POINTS)

    def test_enable_disable(self):
        p = ProbeRegistry(enabled=())
        assert not p.active("flash")
        p.enable("flash")
        assert p.active("flash")
        p.disable("flash")
        assert not p.active("flash")

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            ProbeRegistry(enabled=("bogus",))
        with pytest.raises(ValueError):
            ProbeRegistry().enable("bogus")

    def test_null_telemetry_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert not NULL_TELEMETRY.probes.active("request")


# ----------------------------------------------------------------------
# end-to-end: replay with telemetry attached
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def instrumented_replay():
    telemetry = Telemetry(Simulator())
    trace = make_workload("Fin1", duration=None, max_requests=600, seed=7)
    cfg = ReplayConfig(capacity_mb=32, pool_blocks=32)
    result = replay(trace, "EDC", cfg, telemetry=telemetry)
    return telemetry, result


class TestReplaySmoke:
    def test_write_layers_sum_to_end_to_end(self, instrumented_replay):
        telemetry, _ = instrumented_replay
        b = telemetry.write_breakdown()
        assert b["n_requests"] > 0
        assert b["end_to_end"] > 0
        # headline acceptance criterion: residual within 1 % end-to-end
        assert abs(b["unattributed"]) <= 0.01 * b["end_to_end"]
        layer_sum = sum(
            b[k] for k in ("queue", "estimate", "compress",
                           "flash_program", "gc_stall")
        )
        assert layer_sum == pytest.approx(b["end_to_end"], rel=0.01)

    def test_read_breakdown_populated(self, instrumented_replay):
        telemetry, _ = instrumented_replay
        b = telemetry.read_breakdown()
        if b["n_requests"]:
            assert b["flash_program"] > 0
            # pieces can overlap on the device: allow a looser residual
            assert abs(b["unattributed"]) <= 0.05 * b["end_to_end"]

    def test_mean_response_agrees_with_device(self, instrumented_replay):
        telemetry, result = instrumented_replay
        total = telemetry.write_end_to_end + telemetry.read_end_to_end
        n = telemetry.write_requests + telemetry.read_requests
        assert n == result.n_requests
        assert total / n == pytest.approx(result.mean_response, rel=1e-6)

    def test_spans_nest_under_request_roots(self, instrumented_replay):
        telemetry, _ = instrumented_replay
        by_id = {s.span_id: s for s in telemetry.tracer.spans}
        roots = [s for s in telemetry.tracer.spans if s.layer == "request"]
        children = [s for s in telemetry.tracer.spans
                    if s.parent_id is not None]
        assert roots and children
        for s in children:
            if s.parent_id in by_id:
                parent = by_id[s.parent_id]
                assert parent.layer == "request"
                assert s.start >= parent.start - 1e-12

    def test_histograms_populated(self, instrumented_replay):
        telemetry, _ = instrumented_replay
        hists = telemetry.metrics.histograms
        assert hists["write.response"].count == telemetry.write_requests
        assert hists["flash.write_service"].count > 0

    def test_telemetry_replay_matches_plain_replay(self):
        trace = make_workload("Fin1", duration=None, max_requests=300, seed=7)
        cfg = ReplayConfig(capacity_mb=32, pool_blocks=32)
        plain = replay(trace, "EDC", cfg)
        instrumented = replay(
            trace, "EDC", cfg, telemetry=Telemetry(Simulator())
        )
        # observation must not perturb the simulation
        assert instrumented.mean_response == plain.mean_response
        assert instrumented.compression_ratio == plain.compression_ratio


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_dump_jsonl(self, instrumented_replay):
        telemetry, _ = instrumented_replay
        fp = io.StringIO()
        n = dump_jsonl(telemetry.tracer, fp)
        lines = fp.getvalue().strip().splitlines()
        assert n == len(telemetry.tracer.spans)
        assert len(lines) == n  # no drops in this small replay
        first = json.loads(lines[0])
        assert {"name", "layer", "start", "end"} <= set(first)

    def test_layer_breakdown_rows(self, instrumented_replay):
        telemetry, _ = instrumented_replay
        rows = layer_breakdown_rows(telemetry)
        layers = [r[0] for r in rows["write"]]
        assert layers[:5] == ["queue", "estimate", "compress",
                              "flash_program", "gc_stall"]
        assert "end_to_end" in layers and "unattributed" in layers

    def test_render_functions_return_text(self, instrumented_replay):
        telemetry, _ = instrumented_replay
        table = render_layer_breakdown(telemetry)
        assert "flash_program" in table
        summary = render_telemetry_summary(telemetry)
        assert "write path" in summary and "flame" in summary
        flame = ascii_flamegraph(telemetry.tracer)
        assert "write" in flame


class TestExporterEdgeCases:
    def test_dump_jsonl_empty_tracer(self):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        fp = io.StringIO()
        assert dump_jsonl(tracer, fp) == 0
        assert fp.getvalue() == ""

    def test_flamegraph_no_spans(self):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        assert ascii_flamegraph(tracer) == "(no spans recorded)"

    def test_flamegraph_single_span(self):
        sim = Simulator()
        tracer = Tracer(lambda: sim.now)
        span = tracer.start("write", layer="request")
        sim.schedule(2.0, lambda: tracer.finish(span))
        sim.run()
        flame = ascii_flamegraph(tracer)
        lines = flame.splitlines()
        assert len(lines) == 2  # header + the one path
        assert "total 2000.000 ms" in lines[0]
        assert lines[1].lstrip().startswith("write")
        assert "n=1" in lines[1]

    def test_breakdown_table_zero_requests(self):
        # A telemetry object that never saw a request must still render
        # without dividing by zero.
        telemetry = Telemetry(Simulator())
        rows = layer_breakdown_rows(telemetry)
        for path in ("write", "read"):
            for _layer, total, share, mean_us in rows[path]:
                assert total == 0.0
                assert share == 0.0
                assert mean_us == 0.0
        table = render_layer_breakdown(telemetry)
        assert "(0 requests)" in table

    def test_summary_zero_requests(self):
        telemetry = Telemetry(Simulator())
        summary = render_telemetry_summary(telemetry)
        assert "write path" in summary
        assert "(no spans recorded)" in summary
