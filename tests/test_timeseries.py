"""Tests for ring-buffered time series and the periodic sampler.

The replay test at the bottom checks the acceptance property end to
end: a Fin1 EDC replay with the sampler attached produces the full
standard vocabulary (>= 8 series) plus exact band-switch markers, and
the sampled values agree with the device's own final statistics.
"""

import io
import json

import pytest

from repro.bench.experiments import ReplayConfig, replay
from repro.sim.engine import Simulator
from repro.telemetry import (
    MarkerSeries,
    RingSeries,
    TimeSeriesSampler,
    dump_timeseries_jsonl,
    render_dashboard,
    sparkline,
)
from repro.traces.workloads import make_workload


# ----------------------------------------------------------------------
# RingSeries / MarkerSeries
# ----------------------------------------------------------------------
class TestRingSeries:
    def test_append_and_points(self):
        s = RingSeries("x", capacity=8)
        for i in range(5):
            s.append(float(i), float(i * 10))
        ts, vs = s.points()
        assert ts == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert vs == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert s.last() == (4.0, 40.0)
        assert s.dropped == 0

    def test_wraparound_drops_oldest(self):
        s = RingSeries("x", capacity=4)
        for i in range(10):
            s.append(float(i), float(i))
        ts, vs = s.points()
        assert ts == [6.0, 7.0, 8.0, 9.0]  # chronological after wrap
        assert vs == ts
        assert len(s) == 4
        assert s.dropped == 6

    def test_rejects_nan(self):
        s = RingSeries("x", capacity=4)
        with pytest.raises(ValueError):
            s.append(0.0, float("nan"))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingSeries("x", capacity=0)

    def test_empty(self):
        s = RingSeries("x", capacity=4)
        assert s.points() == ([], [])
        assert s.last() is None
        assert len(s) == 0

    def test_markers_bounded(self):
        m = MarkerSeries("band", capacity=3)
        for i in range(5):
            m.add(float(i), f"e{i}")
        assert [lbl for _, lbl in m.events()] == ["e2", "e3", "e4"]
        assert m.dropped == 2


# ----------------------------------------------------------------------
# sampler mechanics on a bare simulator
# ----------------------------------------------------------------------
class TestSampler:
    def test_periodic_ticks_on_sim_clock(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(interval=1.0)
        sampler.sim = sim  # bare binding: no device vocabulary
        clock = {"v": 0.0}
        sampler.register("clock", lambda: clock["v"])
        sampler.start()

        def bump():
            clock["v"] = sim.now

        for t in (0.5, 1.5, 2.5, 3.5):
            sim.schedule(t, bump)
        sim.run()
        # daemon ticks at 1,2,3 fire (before the last foreground event
        # at 3.5); run() then stops instead of ticking forever.
        ts, vs = sampler.series["clock"].points()
        assert ts == [1.0, 2.0, 3.0]
        assert vs == [0.5, 1.5, 2.5]
        assert sampler.ticks == 3

    def test_sampler_does_not_keep_run_alive(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(interval=0.1)
        sampler.sim = sim
        sampler.register("x", lambda: 1.0)
        sampler.start()
        sim.schedule(1.0, lambda: None)
        sim.run()  # must terminate
        assert sim.now == pytest.approx(1.0)

    def test_none_collector_skipped(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(interval=1.0)
        sampler.sim = sim
        sampler.register("maybe", lambda: None)
        sampler.start()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert len(sampler.series["maybe"]) == 0

    def test_register_multi_labels(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(interval=1.0)
        sampler.sim = sim
        sampler.register_multi(
            "share", lambda: {"a": 0.25, "b": 0.75}, label_key="codec"
        )
        sampler.start()
        sim.schedule(1.5, lambda: None)
        sim.run()
        assert sampler.series["share.a"].labels == {"codec": "a"}
        assert sampler.series["share.a"].values() == [0.25]
        assert sampler.series["share.b"].values() == [0.75]

    def test_start_requires_attach(self):
        with pytest.raises(RuntimeError):
            TimeSeriesSampler().start()

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(interval=0.0)

    def test_mark_and_stop(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(interval=1.0)
        sampler.sim = sim
        sampler.register("x", lambda: 1.0)
        sampler.start()
        assert sampler.running
        sampler.mark("chan", "hello", t=0.5)
        sampler.stop()
        assert not sampler.running
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sampler.ticks == 0  # stopped before any tick
        assert sampler.markers["chan"].events() == [(0.5, "hello")]


# ----------------------------------------------------------------------
# sparkline
# ----------------------------------------------------------------------
class TestSparkline:
    def test_resamples_to_width(self):
        out = sparkline(list(range(100)), width=10)
        assert len(out) == 10
        assert out[0] == "▁" and out[-1] == "█"

    def test_flat_series_renders_midline(self):
        # a constant series has no scale of its own: midline, not
        # bottom-pinned (which reads as "zero")
        assert sparkline([5.0, 5.0, 5.0], width=10) == "▄▄▄"
        assert sparkline([0.0, 0.0], width=10) == "▄▄"

    def test_single_sample_renders_midline(self):
        assert sparkline([7.5], width=10) == "▄"

    def test_empty(self):
        assert sparkline([], width=10) == ""


# ----------------------------------------------------------------------
# the full vocabulary over a real replay
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sampled_replay():
    sampler = TimeSeriesSampler(interval=0.25)
    trace = make_workload("Fin1", duration=8.0, seed=7)
    result = replay(
        trace, "EDC", ReplayConfig(capacity_mb=32, pool_blocks=32),
        sampler=sampler,
    )
    return sampler, result


class TestStandardVocabulary:
    def test_at_least_eight_series_sampled(self, sampled_replay):
        sampler, _ = sampled_replay
        nonempty = [n for n, s in sampler.series.items() if len(s) > 0]
        assert len(nonempty) >= 8
        for expected in (
            "monitor.calculated_iops",
            "monitor.raw_iops",
            "policy.band",
            "compression.ratio",
            "alloc.live_slots",
            "queue.depth.cpu",
            "gc.collections",
            "flash.write_amplification",
            "flash.busy_fraction",
        ):
            assert expected in nonempty

    def test_band_switch_markers_recorded(self, sampled_replay):
        sampler, _ = sampled_replay
        markers = sampler.markers["band_switch"].events()
        assert markers, "Fin1 bursts must cross the gzip threshold"
        for t, label in markers:
            assert t >= 0.0
            assert "->" in label

    def test_final_samples_match_device_stats(self, sampled_replay):
        sampler, result = sampled_replay
        _, ratio = sampler.series["compression.ratio"].last()
        assert ratio == pytest.approx(result.compression_ratio, rel=0.05)
        _, wa = sampler.series["flash.write_amplification"].last()
        assert wa == pytest.approx(result.write_amplification, rel=0.05)

    def test_codec_share_series_carry_labels(self, sampled_replay):
        sampler, result = sampled_replay
        shares = {
            name.split(".")[-1]: s
            for name, s in sampler.series.items()
            if name.startswith("codec.write_share.")
        }
        assert set(shares) <= set(result.codec_shares)
        for codec, s in shares.items():
            assert s.labels == {"codec": codec}
            assert s.metric == "codec.write_share"

    def test_sampler_observation_is_passive(self):
        trace = make_workload("Fin1", duration=4.0, seed=3)
        cfg = ReplayConfig(capacity_mb=32, pool_blocks=32)
        plain = replay(trace, "EDC", cfg)
        sampled = replay(trace, "EDC", cfg,
                         sampler=TimeSeriesSampler(interval=0.25))
        assert sampled.mean_response == plain.mean_response
        assert sampled.compression_ratio == plain.compression_ratio

    def test_dashboard_renders(self, sampled_replay):
        sampler, _ = sampled_replay
        text = render_dashboard(sampler, width=40)
        assert "time-series dashboard" in text
        assert "policy.band" in text
        assert "band switches" in text and "^" in text
        assert "markers[band_switch]" in text

    def test_jsonl_dump_round_trips(self, sampled_replay):
        sampler, _ = sampled_replay
        fp = io.StringIO()
        n = dump_timeseries_jsonl(sampler, fp)
        lines = fp.getvalue().strip().splitlines()
        assert len(lines) == n
        docs = [json.loads(line) for line in lines]
        series_docs = [d for d in docs if "series" in d]
        marker_docs = [d for d in docs if "markers" in d]
        assert {d["series"] for d in series_docs} == {
            n for n, s in sampler.series.items() if len(s) > 0
        }
        assert marker_docs and marker_docs[0]["events"]
        for d in series_docs:
            assert len(d["t"]) == len(d["v"])
