"""Tests for the SPC and MSR trace format parsers/writers."""

import io

import pytest

from repro.traces.model import IORequest, Trace
from repro.traces.msr import MsrFormatError, parse_msr, write_msr
from repro.traces.spc import SPC_SECTOR, SpcFormatError, parse_spc, write_spc


class TestSpcParse:
    def test_basic_line(self):
        t = parse_spc(["0,8,4096,r,0.5"])
        assert len(t) == 1
        req = t[0]
        assert req.is_read
        assert req.lba == 8 * SPC_SECTOR
        assert req.nbytes == 4096
        assert req.time == 0.5

    def test_write_opcode_case_insensitive(self):
        t = parse_spc(["0,0,512,W,0.0"])
        assert t[0].is_write

    def test_asu_filter(self):
        lines = ["0,0,512,r,0.0", "1,0,512,r,0.1", "0,8,512,r,0.2"]
        t = parse_spc(lines, asu=0)
        assert len(t) == 2

    def test_asus_separated_when_unfiltered(self):
        lines = ["0,0,512,r,0.0", "1,0,512,r,0.1"]
        t = parse_spc(lines)
        assert t[0].lba != t[1].lba

    def test_blank_and_comment_lines_skipped(self):
        t = parse_spc(["", "# header", "0,0,512,r,0.0"])
        assert len(t) == 1

    def test_zero_size_skipped(self):
        t = parse_spc(["0,0,0,r,0.0", "0,0,512,r,0.1"])
        assert len(t) == 1

    def test_max_requests(self):
        lines = [f"0,{i},512,r,{i}.0" for i in range(10)]
        assert len(parse_spc(lines, max_requests=3)) == 3

    def test_extra_fields_ignored(self):
        t = parse_spc(["0,0,512,r,0.0,extra,fields"])
        assert len(t) == 1

    @pytest.mark.parametrize(
        "line", ["0,0,512", "x,0,512,r,0.0", "0,0,512,z,0.0", "0,0,notanint,r,0.0"]
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(SpcFormatError):
            parse_spc([line])


class TestSpcRoundTrip:
    def test_write_then_parse(self, tmp_path):
        trace = Trace(
            "t",
            [
                IORequest(0.0, "W", 0, 4096),
                IORequest(0.5, "R", 8192, 512),
            ],
        )
        path = tmp_path / "t.spc"
        write_spc(trace, path)
        back = parse_spc(path, asu=0)
        assert len(back) == 2
        assert back[0].lba == 0 and back[0].is_write
        assert back[1].lba == 8192 and back[1].nbytes == 512

    def test_write_to_stream(self):
        buf = io.StringIO()
        write_spc(Trace("t", [IORequest(1.0, "R", 512, 512)]), buf)
        assert buf.getvalue() == "0,1,512,r,1.000000\n"

    def test_unaligned_lba_rejected(self):
        buf = io.StringIO()
        with pytest.raises(SpcFormatError):
            write_spc(Trace("t", [IORequest(0.0, "R", 100, 512)]), buf)


class TestMsrParse:
    def test_basic_line(self):
        line = "128166372003061629,usr,0,Read,7014609920,24576,41286"
        t = parse_msr([line])
        assert len(t) == 1
        assert t[0].is_read
        assert t[0].lba == 7014609920
        assert t[0].nbytes == 24576
        assert t[0].time == 0.0  # rebased

    def test_timestamps_rebased_to_seconds(self):
        base = 128166372003061629
        lines = [
            f"{base},usr,0,Read,0,512,0",
            f"{base + 10_000_000},usr,0,Write,4096,512,0",
        ]
        t = parse_msr(lines)
        assert t[1].time == pytest.approx(1.0)
        assert t[1].is_write

    def test_disk_filter(self):
        lines = [
            "100,usr,0,Read,0,512,0",
            "200,usr,1,Read,0,512,0",
        ]
        assert len(parse_msr(lines, disk=1)) == 1

    def test_disks_separated_when_unfiltered(self):
        lines = ["100,usr,0,Read,0,512,0", "100,usr,1,Read,0,512,0"]
        t = parse_msr(lines)
        assert t[0].lba != t[1].lba

    def test_zero_size_skipped(self):
        lines = ["100,usr,0,Read,0,0,0", "200,usr,0,Read,0,512,0"]
        assert len(parse_msr(lines)) == 1

    @pytest.mark.parametrize(
        "line",
        [
            "100,usr,0,Read,0",
            "abc,usr,0,Read,0,512,0",
            "100,usr,0,Modify,0,512,0",
        ],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(MsrFormatError):
            parse_msr([line])


class TestMsrRoundTrip:
    def test_write_then_parse(self, tmp_path):
        trace = Trace(
            "t",
            [IORequest(0.0, "W", 4096, 4096), IORequest(2.5, "R", 0, 512)],
        )
        path = tmp_path / "t.csv"
        write_msr(trace, path)
        back = parse_msr(path, disk=0)
        assert len(back) == 2
        assert back[0].is_write and back[0].lba == 4096
        assert back[1].time == pytest.approx(2.5)

    def test_stream_format(self):
        buf = io.StringIO()
        write_msr(Trace("t", [IORequest(1.0, "R", 0, 512)]), buf, hostname="h", disk=3)
        assert buf.getvalue() == "10000000,h,3,Read,0,512,0\n"
