"""Tests for the IORequest/Trace model and trace statistics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.traces.model import IORequest, READ, Trace, WRITE


def w(t, lba, n=4096):
    return IORequest(t, WRITE, lba, n)


def r(t, lba, n=4096):
    return IORequest(t, READ, lba, n)


class TestIORequest:
    def test_properties(self):
        req = w(1.0, 4096, 8192)
        assert req.is_write and not req.is_read
        assert req.end == 4096 + 8192

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(time=-1.0, op="R", lba=0, nbytes=1),
            dict(time=0.0, op="X", lba=0, nbytes=1),
            dict(time=0.0, op="R", lba=-1, nbytes=1),
            dict(time=0.0, op="R", lba=0, nbytes=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            IORequest(**kwargs)


class TestTrace:
    def test_iteration_and_indexing(self):
        t = Trace("t", [w(0.0, 0), r(1.0, 4096)])
        assert len(t) == 2
        assert t[1].is_read
        assert [x.time for x in t] == [0.0, 1.0]

    def test_unsorted_input_gets_sorted(self):
        t = Trace("t", [w(2.0, 0), w(1.0, 0)])
        assert [x.time for x in t] == [1.0, 2.0]

    def test_duration(self):
        assert Trace("t", [w(0.5, 0), w(3.5, 0)]).duration == 3.5
        assert Trace("t", []).duration == 0.0

    def test_head(self):
        t = Trace("t", [w(float(i), 0) for i in range(10)])
        assert len(t.head(3)) == 3

    def test_window_rebases_times(self):
        t = Trace("t", [w(1.0, 0), w(2.0, 0), w(5.0, 0)])
        win = t.window(1.5, 3.0)
        assert len(win) == 1
        assert win[0].time == pytest.approx(0.5)

    def test_window_invalid(self):
        with pytest.raises(ValueError):
            Trace("t", []).window(2.0, 1.0)

    def test_filter(self):
        t = Trace("t", [w(0.0, 0), r(1.0, 0), w(2.0, 0)])
        assert len(t.filter(lambda q: q.is_write)) == 2


class TestScaledAddresses:
    def test_folding_wraps_addresses(self):
        t = Trace("t", [w(0.0, 100 * 4096)])
        folded = t.scaled_addresses(10 * 4096)
        assert folded[0].lba == (100 % 10) * 4096

    def test_preserves_block_alignment(self):
        t = Trace("t", [w(0.0, 77 * 4096)])
        folded = t.scaled_addresses(8 * 4096)
        assert folded[0].lba % 4096 == 0

    def test_same_block_folds_to_same_block(self):
        """Overwrite structure (what drives GC) survives folding."""
        t = Trace("t", [w(0.0, 50 * 4096), w(1.0, 50 * 4096)])
        folded = t.scaled_addresses(16 * 4096)
        assert folded[0].lba == folded[1].lba

    def test_size_clamped_at_boundary(self):
        t = Trace("t", [w(0.0, 7 * 4096, 8 * 4096)])
        folded = t.scaled_addresses(8 * 4096)
        assert folded[0].end <= 8 * 4096

    def test_invalid_args(self):
        t = Trace("t", [w(0.0, 0)])
        with pytest.raises(ValueError):
            t.scaled_addresses(1000)  # not block multiple
        with pytest.raises(ValueError):
            t.scaled_addresses(0)


class TestStats:
    def test_empty_trace(self):
        s = Trace("t", []).stats()
        assert s.n_requests == 0
        assert s.raw_iops == 0.0

    def test_read_write_split(self):
        t = Trace("t", [w(0.0, 0), w(1.0, 0), r(2.0, 0), w(3.0, 0)])
        s = t.stats()
        assert s.reads == 1 and s.writes == 3
        assert s.read_ratio == pytest.approx(0.25)
        assert s.write_ratio == pytest.approx(0.75)

    def test_avg_sizes(self):
        t = Trace("t", [w(0.0, 0, 4096), r(1.0, 0, 8192)])
        s = t.stats()
        assert s.avg_request_bytes == pytest.approx(6144)
        assert s.avg_write_bytes == pytest.approx(4096)
        assert s.avg_read_bytes == pytest.approx(8192)

    def test_raw_iops(self):
        t = Trace("t", [w(float(i) / 10, 0) for i in range(101)])
        assert t.stats().raw_iops == pytest.approx(10.1)

    def test_footprint_counts_distinct_blocks(self):
        t = Trace("t", [w(0.0, 0), w(1.0, 0), w(2.0, 4096, 8192)])
        assert t.stats().footprint_blocks == 3  # blocks 0, 1, 2

    def test_sequential_fraction(self):
        t = Trace("t", [w(0.0, 0), w(1.0, 4096), w(2.0, 100 * 4096), w(3.0, 101 * 4096)])
        assert t.stats().sequential_fraction == pytest.approx(0.5)


class TestIntensitySeries:
    def test_pages_normalisation(self):
        """An 8 KB request counts as two 4 KB requests (§III-D)."""
        t = Trace("t", [w(0.1, 0, 8192), w(0.2, 0, 4096)])
        _, rates = t.intensity_series(bin_width=1.0)
        assert rates[0] == pytest.approx(3.0)

    def test_small_request_counts_one_page(self):
        t = Trace("t", [w(0.1, 0, 512)])
        _, rates = t.intensity_series(bin_width=1.0)
        assert rates[0] == pytest.approx(1.0)


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.sampled_from([READ, WRITE]),
                st.integers(min_value=0, max_value=1000) ,
                st.integers(min_value=1, max_value=65536),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_stats_consistency(self, rows):
        t = Trace("t", [IORequest(a, o, lba * 4096, n) for a, o, lba, n in rows])
        s = t.stats()
        assert s.reads + s.writes == s.n_requests == len(rows)
        if rows:
            assert 0 <= s.read_ratio <= 1
            assert s.sequential_fraction <= 1
