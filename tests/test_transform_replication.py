"""Tests for trace transformations and multi-seed replication."""

import pytest

from repro.bench.experiments import ReplayConfig
from repro.bench.replication import MetricSummary, replicate
from repro.traces.model import IORequest, Trace
from repro.traces.transform import (
    clamp_sizes,
    concat,
    overlay,
    rate_scale,
    reads_only,
    shift,
    time_scale,
    writes_only,
)
from repro.traces.workloads import make_workload


def trace_a():
    return Trace("a", [IORequest(0.0, "W", 0, 4096), IORequest(1.0, "R", 4096, 4096)])


def trace_b():
    return Trace("b", [IORequest(0.5, "W", 8192, 8192)])


class TestOverlay:
    def test_interleaves_by_time(self):
        t = overlay([trace_a(), trace_b()])
        assert [r.time for r in t] == [0.0, 0.5, 1.0]
        assert len(t) == 3

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            overlay([])


class TestScaling:
    def test_time_scale_stretches(self):
        t = time_scale(trace_a(), 2.0)
        assert t.duration == pytest.approx(2.0)

    def test_rate_scale_doubles_iops(self):
        base = trace_a()
        fast = rate_scale(base, 2.0)
        assert fast.stats().raw_iops == pytest.approx(2 * base.stats().raw_iops)

    def test_scale_preserves_population(self):
        t = time_scale(trace_a(), 0.5)
        assert len(t) == 2
        assert {r.lba for r in t} == {0, 4096}

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            time_scale(trace_a(), 0.0)
        with pytest.raises(ValueError):
            rate_scale(trace_a(), -1.0)


class TestShiftConcat:
    def test_shift(self):
        t = shift(trace_a(), 10.0)
        assert t[0].time == 10.0

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            shift(trace_a(), -1.0)

    def test_concat_plays_back_to_back(self):
        t = concat([trace_a(), trace_b()], gap=2.0)
        # trace_a ends at 1.0, gap 2.0, so b starts at 3.0 + its 0.5 offset
        assert t[-1].time == pytest.approx(3.5)
        assert len(t) == 3

    def test_concat_gap_validation(self):
        with pytest.raises(ValueError):
            concat([trace_a()], gap=-0.1)


class TestFilters:
    def test_reads_writes_partition(self):
        t = trace_a()
        assert len(reads_only(t)) + len(writes_only(t)) == len(t)
        assert all(r.is_read for r in reads_only(t))
        assert all(r.is_write for r in writes_only(t))


class TestClampSizes:
    def test_large_request_split(self):
        t = Trace("big", [IORequest(0.0, "W", 0, 16384)])
        out = clamp_sizes(t, 4096)
        assert len(out) == 4
        assert all(r.nbytes == 4096 for r in out)
        assert [r.lba for r in out] == [0, 4096, 8192, 12288]
        assert all(r.time == 0.0 for r in out)

    def test_small_requests_untouched(self):
        out = clamp_sizes(trace_a(), 65536)
        assert len(out) == 2

    def test_bytes_preserved(self):
        t = make_workload("Usr_0", max_requests=200, seed=1)
        out = clamp_sizes(t, 8192)
        assert sum(r.nbytes for r in out) == sum(r.nbytes for r in t)

    def test_validation(self):
        with pytest.raises(ValueError):
            clamp_sizes(trace_a(), 0)


class TestReplication:
    @pytest.fixture(scope="class")
    def summary(self):
        cfg = ReplayConfig(capacity_mb=32, pool_blocks=32)
        factory = lambda seed: make_workload("Fin1", max_requests=400, seed=seed)
        return replicate(factory, "Lzf", seeds=(1, 2, 3), cfg=cfg)

    def test_metrics_present(self, summary):
        for m in ("compression_ratio", "mean_response", "space_saving"):
            assert isinstance(summary[m], MetricSummary)
            assert summary[m].n == 3

    def test_ci_contains_mean(self, summary):
        s = summary["compression_ratio"]
        lo, hi = s.ci95
        assert lo <= s.mean <= hi

    def test_ratio_stable_across_seeds(self, summary):
        # Content population is fixed; ratio varies only mildly with the
        # request mix.
        s = summary["compression_ratio"]
        assert s.std / s.mean < 0.2

    def test_overlap_check(self):
        a = MetricSummary(1.0, 0.1, 0.2, 5)
        b = MetricSummary(1.3, 0.1, 0.2, 5)
        c = MetricSummary(2.0, 0.1, 0.2, 5)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: trace_a(), "Native", seeds=())
