"""Tests for the canned Fin1/Fin2/Usr_0/Prxy_0 workloads (Table II)."""

import pytest

from repro.traces.workloads import (
    FIN1,
    FIN2,
    PRXY0,
    USR0,
    WORKLOADS,
    fin1,
    fin2,
    make_workload,
    prxy0,
    usr0,
)


class TestRegistry:
    def test_all_four_present(self):
        assert set(WORKLOADS) == {"Fin1", "Fin2", "Usr_0", "Prxy_0"}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="Fin1"):
            make_workload("nope")

    def test_factories_match_registry(self):
        t = fin1(max_requests=100)
        assert t.name == "Fin1"
        assert len(t) == 100


class TestTableIICharacteristics:
    """Generated traces must reproduce the published characteristics."""

    @pytest.fixture(scope="class")
    def traces(self):
        return {
            name: make_workload(name, duration=400.0, max_requests=None, seed=42)
            for name in WORKLOADS
        }

    def test_fin1_write_heavy(self, traces):
        s = traces["Fin1"].stats()
        assert 0.68 <= s.write_ratio <= 0.85

    def test_fin2_read_heavy(self, traces):
        s = traces["Fin2"].stats()
        assert 0.72 <= s.read_ratio <= 0.90

    def test_prxy0_nearly_all_writes(self, traces):
        s = traces["Prxy_0"].stats()
        assert s.write_ratio >= 0.93

    def test_usr0_large_requests(self, traces):
        s = traces["Usr_0"].stats()
        assert s.avg_request_bytes > 8192

    def test_oltp_small_requests(self, traces):
        for name in ("Fin1", "Fin2"):
            assert traces[name].stats().avg_request_bytes < 6 * 1024

    def test_mean_iops_orders_of_magnitude(self, traces):
        """Long-run averages in the tens-to-hundreds IOPS range."""
        for name, trace in traces.items():
            iops = trace.stats().raw_iops
            assert 10 <= iops <= 500, (name, iops)

    def test_burst_idle_alternation(self, traces):
        """Fig 3: peak instantaneous intensity far above the average."""
        for name, trace in traces.items():
            _, rates = trace.intensity_series(bin_width=1.0)
            assert rates.max() > 5 * max(rates.mean(), 1e-9), name

    def test_deterministic(self):
        a = make_workload("Fin1", max_requests=500, seed=9)
        b = make_workload("Fin1", max_requests=500, seed=9)
        assert [r.lba for r in a] == [r.lba for r in b]


class TestParameterSets:
    def test_two_level_bursts_configured(self):
        for p in (FIN1, FIN2, USR0, PRXY0):
            assert p.burst.on_levels is not None
            assert len(p.burst.on_levels) == 2

    def test_sequentiality_configured(self):
        for p in (FIN1, FIN2, USR0, PRXY0):
            assert 0 < p.write_seq_prob < 1

    def test_usr0_most_sequential(self):
        assert USR0.write_seq_prob == max(
            p.write_seq_prob for p in (FIN1, FIN2, USR0, PRXY0)
        )
