"""Tests for the write-back DRAM buffer layer."""

import pytest

from repro.core.config import EDCConfig
from repro.core.device import EDCBlockDevice
from repro.core.policy import ElasticPolicy, FixedPolicy
from repro.core.writeback import WriteBackBuffer
from repro.flash.geometry import x25e_like
from repro.flash.ssd import SimulatedSSD
from repro.sdgen.datasets import ENTERPRISE_MIX
from repro.sdgen.generator import ContentStore
from repro.sim.engine import Simulator
from repro.traces.model import IORequest


def setup(capacity=16, watermark=0.75, interval=1.0):
    sim = Simulator()
    ssd = SimulatedSSD(sim, geometry=x25e_like(32))
    content = ContentStore(ENTERPRISE_MIX, pool_blocks=16, seed=1)
    dev = EDCBlockDevice(
        sim, ssd, FixedPolicy("lzf"), content, EDCConfig(sd_enabled=False)
    )
    buf = WriteBackBuffer(
        sim, dev, capacity_blocks=capacity, high_watermark=watermark,
        flush_interval=interval,
    )
    return sim, ssd, dev, buf


def w(t, blk, nblocks=1):
    return IORequest(t, "W", blk * 4096, nblocks * 4096)


class TestBuffering:
    def test_write_acked_from_dram(self):
        sim, ssd, dev, buf = setup()
        sim.schedule_at(0.0, lambda: buf.submit(w(0.0, 0)))
        sim.run(until=0.5)
        assert buf.stats.buffered_writes == 1
        assert buf.dirty_blocks == 1
        assert buf.write_latency.mean() < 1e-4   # microseconds, not device time
        assert dev.stats.writes == 0             # nothing hit the device yet

    def test_overwrite_is_a_hit(self):
        sim, _, _, buf = setup()
        sim.schedule_at(0.0, lambda: buf.submit(w(0.0, 5)))
        sim.schedule_at(0.1, lambda: buf.submit(w(0.1, 5)))
        sim.run(until=0.5)
        assert buf.stats.write_hits == 1
        assert buf.dirty_blocks == 1

    def test_read_hit_served_from_buffer(self):
        sim, ssd, _, buf = setup()
        sim.schedule_at(0.0, lambda: buf.submit(w(0.0, 3)))
        sim.schedule_at(0.1, lambda: buf.submit(IORequest(0.1, "R", 3 * 4096, 4096)))
        sim.run(until=0.5)
        assert buf.stats.read_hits == 1
        assert ssd.stats.reads == 0

    def test_read_miss_passes_through(self):
        sim, ssd, _, buf = setup()
        sim.schedule_at(0.0, lambda: buf.submit(IORequest(0.0, "R", 99 * 4096, 4096)))
        sim.run()
        assert buf.stats.read_misses == 1
        assert ssd.stats.reads == 1


class TestFlushing:
    def test_watermark_triggers_flush(self):
        sim, _, dev, buf = setup(capacity=8, watermark=0.5)
        for i in range(4):
            sim.schedule_at(i * 0.001, lambda i=i: buf.submit(w(i * 0.001, 10 + i)))
        sim.run(until=0.01)
        assert buf.stats.watermark_flushes >= 1
        assert buf.dirty_blocks < 4

    def test_timer_flushes_everything(self):
        sim, _, dev, buf = setup(interval=0.5)
        sim.schedule_at(0.0, lambda: buf.submit(w(0.0, 1)))
        sim.run()  # the 0.5s timer fires
        assert buf.stats.timer_flushes == 1
        assert buf.dirty_blocks == 0
        assert dev.stats.writes >= 1

    def test_flush_coalesces_contiguous_blocks(self):
        sim, _, dev, buf = setup()
        for i in range(4):  # blocks 0..3, contiguous
            sim.schedule_at(i * 0.001, lambda i=i: buf.submit(w(i * 0.001, i)))
        sim.schedule_at(0.01, lambda: buf.flush_all())
        sim.run()
        # One coalesced 16 KB write reached the device, not four 4 KB ones.
        assert dev.stats.writes == 1
        assert dev.stats.logical_bytes == 4 * 4096

    def test_flush_all_drains(self):
        sim, _, dev, buf = setup()
        for i in (0, 5, 9):
            sim.schedule_at(0.0, lambda i=i: buf.submit(w(0.0, i)))
        sim.schedule_at(0.1, lambda: buf.flush_all())
        sim.run()
        assert buf.dirty_blocks == 0
        assert dev.outstanding == 0
        assert dev.stats.writes == 3  # three non-contiguous runs

    def test_clustering_effect(self):
        """Scattered-in-time writes reach the device clustered (§II-C)."""
        sim, _, dev, buf = setup(interval=2.0)
        for i in range(6):
            sim.schedule_at(i * 0.3, lambda i=i: buf.submit(w(i * 0.3, i)))
        sim.run()
        # All six arrive at the device in one timer batch as one run.
        assert buf.stats.flush_batches == 1
        assert dev.stats.merged_runs >= 1


class TestValidation:
    def test_parameter_validation(self):
        sim, _, dev, _ = setup()
        with pytest.raises(ValueError):
            WriteBackBuffer(sim, dev, capacity_blocks=0)
        with pytest.raises(ValueError):
            WriteBackBuffer(sim, dev, high_watermark=0.0)
        with pytest.raises(ValueError):
            WriteBackBuffer(sim, dev, flush_interval=0.0)
        with pytest.raises(ValueError):
            WriteBackBuffer(sim, dev, flush_fraction=2.0)


class TestEndToEnd:
    def test_full_stack_with_edc(self):
        """buffer -> EDC -> flash, the paper's complete published stack."""
        sim = Simulator()
        ssd = SimulatedSSD(sim, geometry=x25e_like(32))
        content = ContentStore(ENTERPRISE_MIX, pool_blocks=32, seed=2)
        dev = EDCBlockDevice(sim, ssd, ElasticPolicy(), content, EDCConfig())
        buf = WriteBackBuffer(sim, dev, capacity_blocks=32, flush_interval=0.2)
        for i in range(20):
            sim.schedule_at(i * 0.01, lambda i=i: buf.submit(w(i * 0.01, i % 10)))
        sim.run()
        buf.flush_all()
        sim.run()
        assert dev.outstanding == 0
        assert buf.dirty_blocks == 0
        # Overwrite absorption: 20 writes to 10 blocks -> at most 10 device
        # blocks per flush round.
        assert dev.stats.logical_bytes <= 20 * 4096


class TestPartialDirtyReads:
    def test_partially_dirty_range_is_a_miss(self):
        sim, ssd, dev, buf = setup()
        sim.schedule_at(0.0, lambda: buf.submit(w(0.0, 0)))  # block 0 dirty
        sim.schedule_at(
            0.1, lambda: buf.submit(IORequest(0.1, "R", 0, 2 * 4096))
        )  # blocks 0 (dirty) + 1 (clean)
        sim.run()
        assert buf.stats.read_misses == 1
        assert ssd.stats.reads == 1

    def test_multiblock_fully_dirty_is_a_hit(self):
        sim, ssd, dev, buf = setup()
        for i in range(3):
            sim.schedule_at(0.0, lambda i=i: buf.submit(w(0.0, i)))
        sim.schedule_at(
            0.1, lambda: buf.submit(IORequest(0.1, "R", 0, 3 * 4096))
        )
        sim.run(until=0.2)
        assert buf.stats.read_hits == 1
        assert ssd.stats.reads == 0
